#pragma once
/// \file event_queue.hpp
/// Minimal discrete-event simulation kernel.
///
/// The paper's model is driven by *discrete virtual time* (Definition 3.1
/// makes time sequences range over the naturals, and section 5.2.1 fixes a
/// granularity of one time unit per elementary network operation).  Every
/// simulator in this library -- the deadline scheduler, the
/// data-accumulating executor, the RTDB sampler and the ad hoc network --
/// runs on this kernel, so their timed omega-word encodings share a single
/// notion of "tick".
///
/// Storage layout (the kernel is the hot path of every experiment):
///   * the priority structure is a 4-ary implicit min-heap over 16-byte
///     POD nodes (tick, seq, slot) in one flat vector -- sift operations
///     move PODs, never callables, and the 4-ary fan-in roughly halves the
///     levels touched per percolation compared to a binary heap;
///   * callables live in a slab of fixed-size chunks with an intrusive
///     free list (a dead cell's bytes store the next free slot).  Chunk
///     storage is address-stable, so a fired action is invoked *in place*
///     -- the only callable moves are the one into the slab on schedule;
///   * the callable itself is a SmallFn with 48 bytes of inline capture
///     storage, so scheduling performs no heap allocation for typical
///     driver events (slab cells are recycled; the vectors amortize).

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "rtw/obs/sink.hpp"
#include "rtw/sim/small_fn.hpp"

namespace rtw::sim {

/// Discrete virtual time, in ticks.  Matches rtw::core::Tick.
using Tick = std::uint64_t;

/// Verdict of the fault-filter stage consulted between pop and fire.
struct FaultDecision {
  enum class Kind : std::uint8_t {
    Fire,   ///< run the event normally
    Drop,   ///< discard the event (its action is destroyed, never run)
    Defer,  ///< re-queue the event at `defer_to` (clamped to > its tick)
  };
  Kind kind = Kind::Fire;
  Tick defer_to = 0;  ///< target tick for Defer; ignored otherwise

  static FaultDecision fire() noexcept { return {Kind::Fire, 0}; }
  static FaultDecision drop() noexcept { return {Kind::Drop, 0}; }
  static FaultDecision defer(Tick to) noexcept { return {Kind::Defer, to}; }
};

/// A scheduled callback.  Events at the same tick fire in scheduling order
/// (a strictly increasing sequence number breaks ties), which keeps every
/// simulation deterministic.
class EventQueue {
public:
  /// Captures up to 48 bytes are stored inline (no allocation); larger
  /// captures fall back to one heap cell.  Move-only.
  using Action = SmallFn<void(Tick), 48>;

  /// One element of a schedule_batch: an action with its absolute time.
  struct Scheduled {
    Tick at;
    Action action;
  };

  /// Schedules `action` to run at absolute time `at`.  Scheduling in the
  /// past (at < now()) is a contract violation and is clamped to now().
  /// Templated so the callable is constructed directly in its slab cell --
  /// zero intermediate moves on the kernel's hottest path.
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&, Tick>
  void schedule_at(Tick at, F&& action) {
    const std::uint32_t slot = alloc_slot();
    ::new (static_cast<void*>(cell(slot))) Action(std::forward<F>(action));
    const Tick clamped = at < now_ ? now_ : at;
    // Observability tap: one relaxed load + untaken branch when no sink
    // is installed (the <= 2% disabled-overhead budget of the kernel).
    // The notify itself lives out of line so the virtual-call sequence
    // does not bloat this inlined hot body.
    if (rtw::obs::sink() != nullptr) [[unlikely]]
      notify_schedule(clamped);
    push_heap(clamped, slot);
  }

  /// Schedules `action` to run `delay` ticks from now.  A delay that would
  /// overflow Tick saturates to the maximum representable tick (the same
  /// clamp-to-contract policy as past scheduling: the event stays in the
  /// future instead of wrapping into the past).
  template <typename F>
    requires std::is_invocable_v<std::decay_t<F>&, Tick>
  void schedule_in(Tick delay, F&& action) {
    Tick at = now_ + delay;
    if (at < now_)  // unsigned wrap: saturate instead of landing in the past
      at = ~Tick{0};
    schedule_at(at, std::forward<F>(action));
  }

  /// Bulk insert: schedules every element of `batch` in order, preserving
  /// the FIFO tie contract (element i of the batch gets a smaller sequence
  /// number than element i+1 and than anything scheduled later).  One
  /// reserve for the heap and the slab instead of per-event growth.
  void schedule_batch(std::vector<Scheduled> batch);

  /// Runs events in timestamp order until the queue empties or virtual
  /// time would exceed `horizon`.  Returns the number of events executed.
  ///
  /// The horizon is *inclusive*: an event scheduled exactly at `horizon`
  /// fires; the first event strictly beyond it stays queued.  On return
  /// the clock reads max(now(), horizon) even if the queue drained early,
  /// so back-to-back run_until calls see monotone time.
  ///
  /// Events sharing a tick are run as one coalesced stretch: the clock is
  /// advanced once per distinct tick, not once per event (observable only
  /// as speed; the firing order contract is unchanged).
  std::size_t run_until(Tick horizon);

  /// Executes exactly one event if available; returns false if empty or
  /// the next event is beyond `horizon` (inclusive, like run_until: an
  /// event at exactly `horizon` executes).  Unlike run_until, a false
  /// return leaves the clock where the last executed event put it.
  bool step(Tick horizon);

  Tick now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Discards all pending events and resets the clock to zero.  An
  /// installed fault filter stays installed.
  void reset();

  /// The fault-filter stage (deterministic fault injection): consulted for
  /// every popped event *before* it fires, with the event's scheduled tick
  /// and sequence number.  Drop destroys the action unrun; Defer re-queues
  /// it at max(defer_to, tick + 1) with a fresh sequence number.  Neither
  /// counts toward step()/run_until() executed totals.  An empty filter
  /// (the default) costs one predictable branch on the hot path.
  using FaultFilter = SmallFn<FaultDecision(Tick, std::uint64_t), 48>;
  void set_fault_filter(FaultFilter filter) { filter_ = std::move(filter); }
  void clear_fault_filter() { filter_ = FaultFilter(); }
  bool has_fault_filter() const noexcept { return static_cast<bool>(filter_); }

  /// Events discarded / re-queued by the filter since construction or the
  /// last reset (observability for traces).
  std::uint64_t filtered_dropped() const noexcept { return filtered_dropped_; }
  std::uint64_t filtered_deferred() const noexcept {
    return filtered_deferred_;
  }

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

private:
  /// 16-byte POD heap node; the callable lives in the slab cell `slot`.
  /// seq is 32-bit with wraparound-aware comparison: FIFO ties only need a
  /// total order among *coexisting* same-tick events, and fewer than 2^31
  /// events can coexist, so (a.seq - b.seq) as a signed difference orders
  /// correctly across wraps.
  struct Node {
    Tick at;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const Node& a, const Node& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  /// Raw storage for one Action.  Cells live in fixed arrays (chunks), so
  /// their addresses are stable even while callbacks schedule new events:
  /// a fired action runs in place, never moved out first.  A dead cell's
  /// first bytes hold the intrusive free-list link.
  struct Cell {
    alignas(std::max_align_t) unsigned char raw[sizeof(Action)];
  };
  static constexpr std::uint32_t kChunkShift = 7;  ///< 128 cells per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  Action* cell(std::uint32_t slot) noexcept {
    return reinterpret_cast<Action*>(
        chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)].raw);
  }

  /// Claims a free cell (recycled or fresh); the caller placement-news the
  /// Action into it.  Inline fast path (pop the free list / bump the
  /// high-water mark) because schedule_at pays this once per event; chunk
  /// growth is the out-of-line slow path.
  std::uint32_t alloc_slot() {
    if (free_head_ != kNil) {
      const std::uint32_t slot = free_head_;
      std::memcpy(&free_head_, cell(slot), sizeof(free_head_));
      return slot;
    }
    if (used_ == capacity_) [[unlikely]]
      grow_chunks();
    return used_++;
  }
  /// Appends a chunk to the slab (alloc_slot's slow path).
  void grow_chunks();
  /// Inserts a heap node for an already-filled cell.  Inline for the same
  /// reason as alloc_slot; the percolation loop stays out of line.
  void push_heap(Tick at, std::uint32_t slot) {
    heap_.push_back(Node{at, seq_++, slot});
    if (heap_.size() > 1) sift_up(heap_.size() - 1);
  }
  /// Pops the minimum node; the action stays in its cell until fired.
  Node pop_min();
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Destroys the cell's action and links the cell into the free list.
  void release_slot(std::uint32_t slot) noexcept;
  /// Fires the popped node's action in place, releasing the cell even if
  /// the action throws.  `sink` is the obs sink sampled once by the
  /// caller's drain loop -- per-event atomic loads would tax the ~18ns
  /// hot path measurably.
  void fire(const Node& node, rtw::obs::Sink* sink);
  /// Cold out-of-line half of the schedule_at obs tap: re-reads the sink
  /// (already observed non-null) and reports the Schedule op.
  void notify_schedule(Tick at);
  /// Applies the fault filter to a popped node.  Returns true when the
  /// event survived (caller fires it); on Drop/Defer the node was consumed.
  bool admit(const Node& node);

  std::vector<Node> heap_;                    ///< 4-ary implicit min-heap
  std::vector<std::unique_ptr<Cell[]>> chunks_;  ///< stable action storage
  std::uint32_t free_head_ = kNil;  ///< intrusive free list of dead cells
  std::uint32_t used_ = 0;          ///< cells ever claimed (high-water mark)
  std::uint32_t capacity_ = 0;      ///< total cells across chunks
  Tick now_ = 0;
  std::uint32_t seq_ = 0;
  FaultFilter filter_;  ///< fault-injection stage; empty = pass-through
  std::uint64_t filtered_dropped_ = 0;
  std::uint64_t filtered_deferred_ = 0;
};

}  // namespace rtw::sim
