#pragma once
/// \file histogram.hpp
/// Fixed-bin histogram with ASCII rendering, used by the routing
/// path-optimality experiment (the per-hop-difference histogram of
/// Broch et al. [12] that the paper maps onto words of R_{n,u}).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtw::sim {

/// Histogram over integer-valued observations in [lo, hi]; observations
/// outside the range are clamped into the first/last bin and counted in
/// underflow()/overflow() as well.
class Histogram {
public:
  Histogram(std::int64_t lo, std::int64_t hi);

  void add(std::int64_t value) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::int64_t bin_value(std::size_t bin) const {
    return lo_ + static_cast<std::int64_t>(bin);
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Fraction of observations in a bin (0 when empty).
  double fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering: one row per bin, a bar of '#' scaled to
  /// `width` columns, plus count and percentage.
  std::string render(std::size_t width = 40) const;

private:
  std::int64_t lo_;
  std::int64_t hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace rtw::sim
