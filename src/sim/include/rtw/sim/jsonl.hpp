#pragma once
/// \file jsonl.hpp
/// Minimal one-line JSON writer (JSON Lines: one self-contained object per
/// line).  Used by the engine's RunTrace export and by every bench_* binary
/// so the BENCH_*.json perf trajectory can be scraped from stdout without a
/// JSON dependency.

#include <cmath>
#include <concepts>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace rtw::sim {

/// Builder for a single flat JSON object, rendered on one line.  Keys are
/// emitted in insertion order; values are strings, booleans, integers or
/// doubles.  Nested objects are out of scope (use another line).
class JsonLine {
public:
  JsonLine& field(std::string_view key, std::string_view value) {
    open(key);
    body_ += '"';
    escape(body_, value);
    body_ += '"';
    return *this;
  }

  JsonLine& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }

  JsonLine& field(std::string_view key, const std::string& value) {
    return field(key, std::string_view(value));
  }

  JsonLine& field(std::string_view key, bool value) {
    open(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  template <typename T>
    requires(std::integral<T> && !std::same_as<T, bool>)
  JsonLine& field(std::string_view key, T value) {
    open(key);
    body_ += std::to_string(value);
    return *this;
  }

  JsonLine& field(std::string_view key, double value) {
    open(key);
    if (std::isfinite(value)) {
      std::ostringstream os;
      os.precision(12);
      os << value;
      body_ += os.str();
    } else {
      body_ += "null";  // JSON has no NaN/Inf
    }
    return *this;
  }

  /// The finished object, e.g. {"bench":"x","n":3}.
  std::string str() const { return "{" + body_ + "}"; }

private:
  void open(std::string_view key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    escape(body_, key);
    body_ += "\":";
  }

  static void escape(std::string& dst, std::string_view s) {
    static constexpr char hex[] = "0123456789abcdef";
    for (char c : s) {
      switch (c) {
        case '"':
          dst += "\\\"";
          break;
        case '\\':
          dst += "\\\\";
          break;
        case '\n':
          dst += "\\n";
          break;
        case '\t':
          dst += "\\t";
          break;
        case '\r':
          dst += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            dst += "\\u00";
            dst += hex[(c >> 4) & 0xf];
            dst += hex[c & 0xf];
          } else {
            dst += c;
          }
      }
    }
  }

  std::string body_;
};

/// The unified bench-record builder: every bench_* binary opens its JSONL
/// records through this instead of hand-rolling the envelope.  The
/// returned line is pre-populated with
///   * "bench"   -- the bench name passed in,
///   * "run_id"  -- one random 64-bit hex id per process, so all lines of
///                  one invocation correlate,
///   * "git_sha" -- the build's revision (cmake-injected; the RTW_GIT_SHA
///                  environment variable overrides at run time),
///   * "hw_threads" -- std::thread::hardware_concurrency() of the host
///                  (named so a bench's own "threads" sweep field never
///                  collides);
/// callers chain their measurement fields after it.
JsonLine bench_record(std::string_view bench);

}  // namespace rtw::sim
