#pragma once
/// \file active.hpp
/// Active databases (section 5.1.2): events, ECA rules ("on event if
/// condition then action"), and an execution model with the paper's three
/// firing modes -- immediate, deferred, and concurrent.
///
///   * Immediate: the rule fires as soon as its event and condition hold.
///   * Deferred: rule invocation waits until the final state (in the
///     absence of any rule) is reached -- i.e. after the triggering batch
///     of events has been fully absorbed.
///   * Concurrent: the action runs as a separately scheduled process; the
///     engine models this by queuing the action for the end of the
///     processing round (after all deferred actions), preserving
///     determinism on one machine.
///
/// Actions may emit further events, triggering cascades; a configurable
/// cascade depth bounds runaway rule systems.

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

using rtw::core::Tick;

/// An (internal or external) event with named attributes.
struct Event {
  std::string name;
  Tick time = 0;
  std::map<std::string, Value> attributes;
};

enum class FiringMode { Immediate, Deferred, Concurrent };

std::string to_string(FiringMode m);

/// Emission hook handed to actions so they can raise cascading events.
using EmitFn = std::function<void(Event)>;

/// An ECA rule.
struct Rule {
  std::string name;
  std::string event;  ///< triggering event name
  FiringMode mode = FiringMode::Immediate;
  /// `if` part: may consult parameters passed with the event or the
  /// content of the database.
  std::function<bool(const Database&, const Event&)> condition;
  /// `then` part: an arbitrary routine, usually an updating transaction.
  std::function<void(Database&, const Event&, const EmitFn&)> action;
};

/// Statistics of one processing round.
struct FiringReport {
  std::vector<std::string> fired;  ///< rule names in execution order
  std::size_t cascades = 0;        ///< events emitted by actions
  bool cascade_limit_hit = false;
};

/// Forward-chaining rule engine.
class RuleEngine {
public:
  explicit RuleEngine(std::size_t cascade_limit = 64);

  void add_rule(Rule rule);
  std::size_t rules() const noexcept { return rules_.size(); }

  /// Processes one external event against `db`: immediate rules fire
  /// during event absorption (including cascades), deferred rules fire
  /// once the immediate wave has settled, concurrent rules run last.
  FiringReport process(Database& db, Event event);

  /// Processes a batch of events as one round (deferred rules wait for the
  /// whole batch).
  FiringReport process_batch(Database& db, std::vector<Event> events);

private:
  std::size_t cascade_limit_;
  std::vector<Rule> rules_;
};

}  // namespace rtw::rtdb
