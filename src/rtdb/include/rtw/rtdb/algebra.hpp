#pragma once
/// \file algebra.hpp
/// Relational algebra over Relation instances: the query language of
/// section 5.1.1 ("a variant of relational algebra can be defined as a
/// query language for real-time databases").
///
/// Operators: selection, projection, rename, cartesian product, natural
/// join, union, difference, intersection.  All are pure (value semantics);
/// sorts are checked and ModelError is thrown on schema violations.

#include <functional>
#include <map>

#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

/// Row predicate: receives the relation (for attribute lookup) and a tuple.
using RowPredicate = std::function<bool(const Relation&, const Tuple&)>;

/// sigma_pred(r): tuples satisfying the predicate.
Relation select(const Relation& r, const RowPredicate& pred);

/// Convenience selections.
Relation select_eq(const Relation& r, const Attribute& a, const Value& v);
Relation select_lt(const Relation& r, const Attribute& a, const Value& v);

/// pi_attrs(r): projection onto `attrs` (duplicates collapse, set
/// semantics).  Order of `attrs` defines the output sort.
Relation project(const Relation& r, const std::vector<Attribute>& attrs);

/// rho(r): renames attributes per `mapping` (absent attributes unchanged).
Relation rename(const Relation& r,
                const std::map<Attribute, Attribute>& mapping);

/// r x s: cartesian product; attribute collisions are a ModelError (rename
/// first).
Relation product(const Relation& r, const Relation& s);

/// r |x| s: natural join on all shared attributes (product if none).
Relation natural_join(const Relation& r, const Relation& s);

/// Set operations: sorts must match exactly.
Relation set_union(const Relation& r, const Relation& s);
Relation set_difference(const Relation& r, const Relation& s);
Relation set_intersection(const Relation& r, const Relation& s);

// ---- aggregates (the extended algebra real-time queries lean on) --------

/// Groups by `key` and counts group sizes; output sort {key, "count"}.
Relation group_count(const Relation& r, const Attribute& key);

/// Groups by `key` and sums the integer attribute `value`; non-integers
/// are a ModelError.  Output sort {key, "sum"}.
Relation group_sum(const Relation& r, const Attribute& key,
                   const Attribute& value);

/// Maximum of integer attribute `value` over all tuples; nullopt on empty.
std::optional<std::int64_t> max_of(const Relation& r, const Attribute& value);

}  // namespace rtw::rtdb
