#pragma once
/// \file relation.hpp
/// Relations, tuples, instances and database schemas (section 5.1.1,
/// following the notation of Abiteboul-Hull-Vianu [2]).
///
///   * an attribute is a name from **att**;
///   * sort(R) is a relation's ordered attribute list; arity(R) = |sort(R)|;
///   * a tuple over R is R(a_1, ..., a_n) with a_i in **dom**;
///   * a relation instance is a finite *set* of tuples;
///   * a database schema **R** is a finite set of relation names; an
///     instance **I** maps each name to a relation instance.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rtw/rtdb/value.hpp"

namespace rtw::rtdb {

using Attribute = std::string;
using Tuple = std::vector<Value>;

/// A named relation instance with its sort.  Set semantics: duplicate
/// inserts are ignored; iteration order is insertion order (deterministic).
class Relation {
public:
  Relation() = default;
  Relation(std::string name, std::vector<Attribute> sort);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Attribute>& sort() const noexcept { return sort_; }
  std::size_t arity() const noexcept { return sort_.size(); }
  std::size_t size() const noexcept { return tuples_.size(); }
  bool empty() const noexcept { return tuples_.empty(); }

  /// Index of an attribute within the sort; nullopt if absent.
  std::optional<std::size_t> attribute_index(const Attribute& a) const;

  /// Inserts a tuple (arity-checked).  Returns false if already present.
  bool insert(Tuple tuple);

  /// Removes all tuples matching `pred`; returns the number removed.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t removed = 0;
    std::vector<Tuple> kept;
    kept.reserve(tuples_.size());
    for (auto& t : tuples_) {
      if (pred(t))
        ++removed;
      else
        kept.push_back(std::move(t));
    }
    tuples_ = std::move(kept);
    return removed;
  }

  bool contains(const Tuple& tuple) const;

  const std::vector<Tuple>& tuples() const noexcept { return tuples_; }

  /// Value of attribute `a` in `tuple`; throws ModelError if `a` is not in
  /// the sort.
  const Value& field(const Tuple& tuple, const Attribute& a) const;

  /// Multi-line rendering in the style of the paper's Figure 1.
  std::string to_string() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.name_ == b.name_ && a.sort_ == b.sort_ && a.tuples_ == b.tuples_;
  }

private:
  std::string name_;
  std::vector<Attribute> sort_;
  std::vector<Tuple> tuples_;
};

/// A database instance **I**: relation name -> relation instance.
class Database {
public:
  /// Adds (or replaces) a relation.
  void put(Relation relation);
  bool has(const std::string& name) const;
  /// Throws ModelError if absent.
  const Relation& get(const std::string& name) const;
  Relation& get(const std::string& name);

  /// The schema **R**: the relation names, sorted.
  std::vector<std::string> schema() const;
  std::size_t relations() const noexcept { return byname_.size(); }
  /// Total tuple count across relations.
  std::size_t size() const;

  std::string to_string() const;

  friend bool operator==(const Database& a, const Database& b) {
    return a.byname_ == b.byname_;
  }

private:
  std::map<std::string, Relation> byname_;
};

}  // namespace rtw::rtdb
