#pragma once
/// \file rtdb.hpp
/// The real-time database model (section 5.1.2, after Vrbsky [34] /
/// the historical relational data model [18]).
///
/// Objects fall in three categories:
///   * image objects -- values read directly from the external environment,
///     sampled periodically; archival snapshots are kept;
///   * derived objects -- computed from image (and other) objects, with
///     timestamp = the *oldest* valid time among their inputs;
///   * invariant objects -- constant with time.
///
/// With ages a(x) = now - t_x and dispersions d(x,y) = |t_x - t_y|, a set
/// is *absolutely consistent* when every age is within T_a, and *relatively
/// consistent* when every pairwise dispersion is within T_r.  A real-time
/// database instance is B = (I_1, ..., I_n, D, V): the archive of image
/// snapshots, the derived set, and the invariant set.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/rtdb/active.hpp"
#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

/// A value with its valid time.
struct TimedValue {
  Value value;
  Tick valid_time = 0;

  friend bool operator==(const TimedValue&, const TimedValue&) = default;
};

/// Age of an object at `now` (0 if the timestamp is in the future).
inline Tick age(const TimedValue& x, Tick now) {
  return now >= x.valid_time ? now - x.valid_time : 0;
}

/// Dispersion of two objects: |t_x - t_y|.
inline Tick dispersion(const TimedValue& x, const TimedValue& y) {
  return x.valid_time >= y.valid_time ? x.valid_time - y.valid_time
                                      : y.valid_time - x.valid_time;
}

/// An image object: externally sampled every `period` ticks.
struct ImageObjectSpec {
  std::string name;
  Tick period = 1;  ///< t_k of section 5.1.3
  /// Reads the external world at a given time (the "sampling process").
  std::function<Value(Tick)> sampler;
};

/// A derived object: recomputed from named source objects on every update;
/// timestamp = oldest input valid time.
struct DerivedObjectSpec {
  std::string name;
  std::vector<std::string> inputs;  ///< image or derived object names
  std::function<Value(const std::vector<TimedValue>&)> derive;
};

/// The real-time database B = (I_1 ... I_n, D, V).
class RealTimeDatabase {
public:
  /// `archive_depth` = n: how many image-snapshot generations to retain.
  explicit RealTimeDatabase(std::size_t archive_depth = 4);

  void add_image(ImageObjectSpec spec);
  void add_derived(DerivedObjectSpec spec);
  void add_invariant(std::string name, Value value);

  /// Runs the sampling processes due at time `now` (each image object with
  /// now % period == 0 is read), then recomputes derived objects
  /// (immediate firing, as implied by [34] -- valid and transaction times
  /// coincide).  If a RuleEngine is attached, a "Sample" event per sampled
  /// object is processed against `rules_db`.
  void tick(Tick now);

  /// Attaches a rule engine + database that receive a "Sample" event (with
  /// attributes object/value) for every sampling.
  void attach_rules(RuleEngine* engine, Database* rules_db);

  // ---- queries over the object sets -------------------------------------

  std::optional<TimedValue> image_value(const std::string& name) const;
  std::optional<TimedValue> derived_value(const std::string& name) const;
  std::optional<TimedValue> invariant_value(const std::string& name,
                                            Tick now) const;
  /// Any object by name (image, then derived, then invariant).
  std::optional<TimedValue> value_of(const std::string& name, Tick now) const;

  /// The archive I_1..I_n of an image object (oldest first, most recent
  /// last = I_n).
  std::vector<TimedValue> archive(const std::string& name) const;

  /// Absolute consistency of the *current* image set: all ages <= T_a, and
  /// (per the paper) the ages of objects used to derive the derived
  /// objects are within the threshold too.
  bool absolutely_consistent(Tick now, Tick t_a) const;

  /// Relative consistency: pairwise dispersion of current image values
  /// <= T_r.
  bool relatively_consistent(Tick t_r) const;

  std::vector<std::string> image_names() const;
  std::vector<std::string> derived_names() const;
  std::vector<std::string> invariant_names() const;
  std::size_t archive_depth() const noexcept { return archive_depth_; }
  Tick image_period(const std::string& name) const;

private:
  struct ImageState {
    ImageObjectSpec spec;
    std::vector<TimedValue> history;  ///< bounded by archive_depth_
  };
  struct DerivedState {
    DerivedObjectSpec spec;
    std::optional<TimedValue> current;
  };

  void recompute_derived(Tick now);

  std::size_t archive_depth_;
  std::vector<ImageState> images_;
  std::vector<DerivedState> derived_;
  std::map<std::string, Value> invariants_;
  RuleEngine* rule_engine_ = nullptr;
  Database* rules_db_ = nullptr;
};

}  // namespace rtw::rtdb
