#pragma once
/// \file recognition.hpp
/// The recognition problem, classical and real-time.
///
/// Classical (section 5.1.1, equation 5): for a query q, the language
/// { enc(I) $ enc(u) | u in q(I) } -- here exposed as the predicate
/// `recognition_holds` plus a word encoding for completeness.
///
/// Real-time (Definition 5.1): L_aq = { db_B aq_[q,s,t] | s in q(B) } and
/// L_pq = { db_B pq_[q,s,t,t_p] | s in q(B) }.  The acceptor below
/// consumes the merged word, reconstructs B's relational rendering from
/// the stream alone, evaluates the (catalog-resolved) query at each issue
/// time under a work-cost model, enforces the deadline via the stream's
/// wq/dq/usefulness symbols, and writes f per successfully served
/// invocation -- exactly the Definition 3.4 protocol described in the
/// paper (first f = success for aperiodic; one f per served occurrence for
/// periodic, with a failure blocking all further f's).

#include <memory>
#include <optional>
#include <vector>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/language.hpp"
#include "rtw/core/online.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/rtdb/encode.hpp"
#include "rtw/rtdb/query.hpp"

namespace rtw::rtdb {

// ------------------------------------------------------------- classical

/// u in q(I)?
bool recognition_holds(const Query& q, const Database& db, const Tuple& u);

/// enc(I)$enc(u): the classical recognition word (a timed word with the
/// all-zero time sequence -- a "classical word" in the section 3.2 sense).
rtw::core::TimedWord classical_recognition_word(const Database& db,
                                                const Tuple& u);

// -------------------------------------------------------------- real-time

/// Work-cost model for query evaluation inside the acceptor: virtual ticks
/// P_w needs, as a function of the reconstructed database size.
using QueryCostModel = std::function<Tick(std::size_t db_size)>;

/// Default: evaluation costs max(1, db_size) ticks (linear scan).
QueryCostModel linear_cost();

/// The Definition 5.1 acceptor.  One instance serves both L_aq and L_pq:
/// every completed query block is served in arrival order; an aperiodic
/// word simply contains one block.
///
/// Verdict protocol: a served invocation whose candidate tuple IS in the
/// query result (and whose deadline/usefulness constraint held at
/// evaluation completion) emits one f.  A failed invocation locks the
/// acceptor in s_r.  For aperiodic words the acceptor locks s_f after its
/// single success; for periodic words it keeps serving (acceptance is then
/// judged by the executor's trailing-f heuristic, the honest reading of
/// "f appears infinitely often").
class RecognitionAcceptor final : public rtw::core::RealTimeAlgorithm {
public:
  /// `patience`: after a successful invocation with no further query
  /// activity, the acceptor keeps writing f and locks into s_f once this
  /// many quiet ticks pass -- long enough that any periodic reissue (whose
  /// period must be below the patience) arrives first.
  RecognitionAcceptor(QueryCatalog catalog, QueryCostModel cost,
                      Tick patience = 256);

  void on_tick(const rtw::core::StepContext& ctx) override;
  std::optional<bool> locked() const override;
  void reset() override;
  std::string name() const override { return "rtdb-recognition"; }

  std::uint64_t served() const noexcept { return served_; }
  std::uint64_t failed() const noexcept { return failed_; }

private:
  struct PendingQuery {
    std::optional<std::uint64_t> min_acceptable;
    std::vector<rtw::core::Symbol> body;  ///< symbols between ? and 2nd $
    std::size_t dollars_seen = 0;
    std::size_t split = 0;  ///< candidate/name boundary (first $ position)
    std::uint64_t invocation_index = 0;
    Tick issue_time = 0;
    bool complete = false;
  };
  struct RunningQuery {
    std::string name;
    Tuple candidate;
    std::uint64_t invocation_index = 0;
    Tick issue_time = 0;
    Tick completes_at = 0;
    std::uint64_t min_acceptable = 0;
    /// B as reconstructed when evaluation started: queries are answered
    /// against the instance at issue time, not at completion time.
    Relation snapshot{"Objects", {"Name", "Kind", "Value", "ValidTime"}};
  };

  void ingest(const rtw::core::TimedSymbol& ts);
  void start_running(Tick now);
  Tuple parse_candidate(const std::vector<rtw::core::Symbol>& body,
                        std::size_t end) const;

  QueryCatalog catalog_;
  QueryCostModel cost_;
  Tick patience_;
  std::optional<Tick> accepting_since_;  ///< provisional s_f entry time

  // Reconstruction of B from the stream.
  Relation objects_{"Objects", {"Name", "Kind", "Value", "ValidTime"}};
  std::size_t db0_dollars_ = 0;  ///< 0: in V, 1: in D, 2: db_0 done
  std::vector<rtw::core::Symbol> group_;  ///< current object group
  bool in_group_ = false;
  Tick group_time_ = 0;

  std::optional<PendingQuery> pending_;
  std::vector<PendingQuery> ready_;
  std::optional<RunningQuery> running_;

  std::uint64_t served_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t invocations_seen_ = 0;
  std::optional<bool> lock_;
};

/// Streaming face of Definition 5.1 for the rtw::svc serving layer: an
/// OnlineAcceptor evaluating L_aq / L_pq membership as the merged word
/// arrives (EngineOnlineAcceptor over a fresh RecognitionAcceptor, so
/// online verdicts are exactly the batch engine's).  The acceptor owns
/// its catalog copy; no external lifetime to pin.
std::unique_ptr<rtw::core::OnlineAcceptor> make_online_recognition(
    QueryCatalog catalog, QueryCostModel cost, Tick patience = 256,
    rtw::core::RunOptions options = {});

/// L_aq (Definition 5.1) as a timed language: membership runs the acceptor
/// on the word.  Exactness: aperiodic words lock (exact); periodic words
/// use the trailing-f heuristic.
rtw::core::TimedLanguage recognition_language(QueryCatalog catalog,
                                              QueryCostModel cost,
                                              Tick horizon = 4096);

/// Batch membership: runs every word through a fresh RecognitionAcceptor,
/// fanned across the engine's BatchRunner.  Verdicts in word order,
/// bit-identical to the serial recognition_language membership at any
/// thread count.
std::vector<bool> recognition_sweep(QueryCatalog catalog, QueryCostModel cost,
                                    const std::vector<rtw::core::TimedWord>& words,
                                    Tick horizon = 4096,
                                    const rtw::engine::BatchOptions& batch = {});

}  // namespace rtw::rtdb
