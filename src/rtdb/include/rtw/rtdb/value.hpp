#pragma once
/// \file value.hpp
/// The underlying domain **dom** of the relational model (section 5.1.1).
///
/// The paper fixes a countably infinite set of constants; for the Figure 1
/// database those constants are strings ("Terre Sauvage", "Thompson") and
/// month-resolution dates ("October 1999").  Value is the closed union the
/// library supports: integers, doubles, strings, and dates -- totally
/// ordered (type-major) so tuples can key ordered containers, and ordered
/// *semantically* within dates so the MonthChange rule of section 5.1.2
/// ("del(Date < CurrentDate)") is expressible.

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

namespace rtw::rtdb {

/// A month-resolution date, e.g. {1999, 11} prints as "November 1999".
struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12

  friend constexpr auto operator<=>(const Date& a, const Date& b) {
    if (auto c = a.year <=> b.year; c != 0) return c;
    return a.month <=> b.month;
  }
  friend constexpr bool operator==(const Date&, const Date&) = default;
};

/// Renders/parses the paper's "November 1999" format.
std::string to_string(const Date& d);
/// Parses "November 1999"; throws ModelError on malformed input.
Date parse_date(const std::string& text);

using Value = std::variant<std::int64_t, double, std::string, Date>;

std::string to_string(const Value& v);

/// Total order: type-major (int < double < string < date), then by value.
/// std::variant's built-in operator<=> provides exactly this.
inline auto compare(const Value& a, const Value& b) { return a <=> b; }

}  // namespace rtw::rtdb
