#pragma once
/// \file encode.hpp
/// Section 5.1.3: real-time database instances and queries as timed
/// omega-words.
///
/// Words built here:
///   * db_0  -- enc(V) $ enc(D) $ at time 0: the invariant and derived
///     object sets, specified up front;
///   * db_k  -- the sample stream of image object o_k: enc(o_k(t_i)) at
///     times i * t_k;
///   * db_B  -- db_0 db_1 ... db_r (equation 6), realized with the
///     Definition 3.5 concatenation (merge) from the core library;
///   * aq_[q,s,t]     -- an aperiodic query q issued at time t with
///     candidate tuple s, with no/firm/soft deadline (the section 4.1
///     construction shifted to issue time t);
///   * pq_[q,s,t,t_p] -- a periodic query: the infinite concatenation
///     aq_[q,s_1,t] aq_[q,s_2,t+t_p] ... whose well-behavedness is
///     Lemma 5.1 (checkable via lemma51_index below).
///
/// Encoding conventions (the paper's enc / enc_q, made concrete):
/// object groups open with the marker `#`, names and values are character
/// symbols separated by the marker `@`; query blocks open with the marker
/// `?`, close their two fields with `$`, and use the markers `wq` / `dq`
/// for the waiting/deadline-passed stream so they cannot collide with the
/// section 4.1 symbols (disjointness of alphabets, section 4).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/concat.hpp"
#include "rtw/core/timed_word.hpp"
#include "rtw/deadline/usefulness.hpp"
#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

using rtw::core::Tick;

/// Designated markers of the section 5.1.3 encoding.
namespace qmarks {
rtw::core::Symbol object();       ///< `#`: object group opener
rtw::core::Symbol field();        ///< `@`: name/value and value/value sep
rtw::core::Symbol query();        ///< `?`: query block opener
rtw::core::Symbol waiting();      ///< `wq`
rtw::core::Symbol deadline();     ///< `dq`
}  // namespace qmarks

/// Specification of the database B whose word is to be built.  (The word
/// carries values only; the acceptor reconstructs a relational rendering
/// -- see render_relational.)
struct RtdbWordSpec {
  struct Image {
    std::string name;
    Tick period = 1;                    ///< t_k
    std::function<Value(Tick)> sampler; ///< o_k(t): the external world
  };
  std::vector<std::pair<std::string, Value>> invariants;  ///< V
  std::vector<std::pair<std::string, Value>> derived;     ///< D (at time 0)
  std::vector<Image> images;
};

/// enc of one (name, value) group: `#` name `@` value, all at `at`.
std::vector<rtw::core::TimedSymbol> encode_object(const std::string& name,
                                                  const Value& value,
                                                  Tick at);

/// db_0: the invariant and derived sets at time 0.
rtw::core::TimedWord build_db0(const RtdbWordSpec& spec);

/// db_k for one image object: its unbounded sample stream.
rtw::core::TimedWord build_dbk(const RtdbWordSpec::Image& image);

/// db_B = db_0 db_1 ... db_r (equation 6) via Definition 3.5 merging.
rtw::core::TimedWord build_dbB(const RtdbWordSpec& spec);

/// Ground truth the acceptor's reconstruction must match: a Database with
/// one relation Objects(Name, Kind, Value, ValidTime) reflecting B at time
/// `t` (latest image samples at or before t).
Database render_relational(const RtdbWordSpec& spec, Tick t);

/// An aperiodic query instance (Definition 5.1's q, s, t).
struct AperiodicQuerySpec {
  std::string query;              ///< name resolved via a QueryCatalog
  Tuple candidate;                ///< tuple s whose membership is claimed
  Tick issue_time = 0;            ///< t
  rtw::deadline::Usefulness usefulness =
      rtw::deadline::Usefulness::none(1);
  std::uint64_t min_acceptable = 0;
};

/// aq_[q,s,t]: the query word alone (concatenate with db_B for the
/// recognition problem).
rtw::core::TimedWord build_aq(const AperiodicQuerySpec& spec,
                              Tick decay_span = 4096);

/// A periodic query: issued at t, reissued every t_p; candidate(i) is the
/// tuple tested at the i-th invocation (0-based).
struct PeriodicQuerySpec {
  std::string query;
  std::function<Tuple(std::uint64_t)> candidate;
  Tick issue_time = 0;   ///< t
  Tick period = 1;       ///< t_p
  rtw::deadline::Usefulness usefulness =
      rtw::deadline::Usefulness::none(1);  ///< per-invocation (relative)
  std::uint64_t min_acceptable = 0;
};

/// pq_[q,s,t,t_p]: the infinite concatenation of per-invocation aq words.
/// Well-behaved by Lemma 5.1; the returned generator wears proven traits.
rtw::core::TimedWord build_pq(const PeriodicQuerySpec& spec);

/// Lemma 5.1 made executable: the first index k' with tau_{k'} >= k.
/// The lemma asserts k' is finite and bounded; returns nullopt only if not
/// found within `scan_limit` indices (which would refute the lemma).
std::optional<std::uint64_t> lemma51_index(const rtw::core::TimedWord& word,
                                           Tick k, std::uint64_t scan_limit);

}  // namespace rtw::rtdb
