#pragma once
/// \file ngc.hpp
/// The paper's running example: the National Gallery of Canada database of
/// Figure 1 (schema NGC = {Exhibitions, Schedules}) and the Figure 2 query
/// "which artist is exhibited in which city in November".

#include "rtw/rtdb/query.hpp"
#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb::ngc {

/// Builds the exact database instance of Figure 1: the Exhibitions
/// relation (6 tuples) and the Schedules relation (3 tuples).
Database figure1_instance();

/// The Figure 2 query: sigma(month(Date) = November)(Schedules) |x|
/// Exhibitions, projected on {Artist, City}.
Query november_artists_query();

/// The expected result of Figure 2 (3 tuples over {Artist, City}).
Relation figure2_expected();

}  // namespace rtw::rtdb::ngc
