#pragma once
/// \file query.hpp
/// Queries (section 5.1.1): a query is a partial mapping from inst(**R**)
/// to inst(S) for a fixed database schema **R** and relation schema S.
///
/// Queries are named so they can be referenced from the timed-word
/// encodings of section 5.1.3 (a query's *name* travels in the word; the
/// acceptor resolves it in a QueryCatalog -- the "suitable encoding
/// enc_q over queries" of the paper).

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

/// A named query over database instances.
class Query {
public:
  using Fn = std::function<Relation(const Database&)>;

  Query() = default;
  Query(std::string name, Fn fn);

  const std::string& name() const noexcept { return name_; }
  /// Evaluates the query on `db`.
  Relation operator()(const Database& db) const;
  bool valid() const noexcept { return static_cast<bool>(fn_); }

private:
  std::string name_;
  Fn fn_;
};

/// A registry resolving query names to queries (the enc_q codomain).
class QueryCatalog {
public:
  void add(Query query);
  bool has(const std::string& name) const;
  const Query& get(const std::string& name) const;
  std::size_t size() const noexcept { return queries_.size(); }

private:
  std::map<std::string, Query> queries_;
};

}  // namespace rtw::rtdb
