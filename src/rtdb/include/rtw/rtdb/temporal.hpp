#pragma once
/// \file temporal.hpp
/// Temporal databases (section 5.1.2): discrete linear time (chronons),
/// lifespans as finite unions of closed intervals forming a boolean
/// algebra, and the snapshot view I_t of a database through time.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/rtdb/relation.hpp"

namespace rtw::rtdb {

using rtw::core::Tick;

/// The open upper end used to express "until forever".
inline constexpr Tick kForever = std::numeric_limits<Tick>::max();

/// A closed interval [lo, hi] of chronons; a degenerate interval lo == hi
/// represents a single instant (the paper's representation of one time
/// value).
struct Interval {
  Tick lo = 0;
  Tick hi = 0;

  bool contains(Tick t) const noexcept { return lo <= t && t <= hi; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A lifespan: a finite union of closed intervals, kept normalized
/// (sorted, disjoint, non-adjacent).  Closed under union, intersection and
/// complement (within [0, kForever]) -- the boolean algebra of the paper.
class Lifespan {
public:
  Lifespan() = default;  ///< the empty lifespan

  static Lifespan empty() { return Lifespan(); }
  static Lifespan point(Tick t);
  static Lifespan interval(Tick lo, Tick hi);
  static Lifespan from(Tick lo);  ///< [lo, forever]
  static Lifespan always();       ///< [0, forever]

  bool contains(Tick t) const;
  bool is_empty() const noexcept { return intervals_.empty(); }

  /// Total number of chronons covered (saturates at kForever).
  Tick duration() const;

  Lifespan unite(const Lifespan& other) const;
  Lifespan intersect(const Lifespan& other) const;
  Lifespan complement() const;

  const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  std::string to_string() const;

  friend bool operator==(const Lifespan&, const Lifespan&) = default;

private:
  explicit Lifespan(std::vector<Interval> intervals);
  static std::vector<Interval> normalize(std::vector<Interval> intervals);
  std::vector<Interval> intervals_;
};

/// The temporal database as a sequence of snapshots indexed by time:
/// stores full instances at their transaction times, serves I_t as the
/// most recent snapshot at or before t.
class SnapshotStore {
public:
  /// Records `db` as the state from time `t` on (monotone transaction
  /// times required).
  void record(Tick t, Database db);

  /// I_t: the instance at time t (nullopt before the first snapshot).
  std::optional<Database> instance_at(Tick t) const;

  /// Lifespan during which relation `rel` contained `tuple`, across the
  /// recorded history (valid-time reconstruction from snapshots; the final
  /// snapshot extends to forever).
  Lifespan tuple_lifespan(const std::string& rel, const Tuple& tuple) const;

  std::size_t snapshots() const noexcept { return history_.size(); }
  /// Transaction times of all snapshots.
  std::vector<Tick> times() const;

private:
  std::map<Tick, Database> history_;
};

/// Temporal query: evaluates `q` against the instance as of time `t`
/// (the "access to the past" active-database capability of section
/// 5.1.2).  nullopt before the first snapshot.
std::optional<Relation> as_of(const SnapshotStore& store, Tick t,
                              const std::function<Relation(const Database&)>& q);

/// Evaluates `q` at every snapshot time, pairing results with their
/// transaction times -- the query's own history.
std::vector<std::pair<Tick, Relation>> query_history(
    const SnapshotStore& store,
    const std::function<Relation(const Database&)>& q);

}  // namespace rtw::rtdb
