#include "rtw/rtdb/ngc.hpp"

#include "rtw/rtdb/algebra.hpp"

namespace rtw::rtdb::ngc {

Database figure1_instance() {
  Relation exhibitions("Exhibitions", {"Title", "Description", "Artist"});
  const std::string terre = "Terre Sauvage";
  const std::string landscape = "Canadian Landscape Paintings";
  exhibitions.insert({Value{terre}, Value{landscape}, Value{"Thompson"}});
  exhibitions.insert({Value{terre}, Value{landscape}, Value{"Harris"}});
  exhibitions.insert({Value{terre}, Value{landscape}, Value{"MacDonald"}});
  exhibitions.insert({Value{std::string("Painter of the Soil")},
                      Value{std::string("Works on Paper")},
                      Value{std::string("Schaefer")}});
  const std::string sorrowful = "Sorrowful Images";
  const std::string diptychs = "Early Nederlandish Devotional Diptychs";
  exhibitions.insert({Value{sorrowful}, Value{diptychs}, Value{"Aelbrecht"}});
  exhibitions.insert({Value{sorrowful}, Value{diptychs}, Value{"Dieric"}});

  Relation schedules("Schedules", {"City", "Title", "Date"});
  schedules.insert({Value{std::string("Mexico City")},
                    Value{std::string("Terre Sauvage")},
                    Value{Date{1999, 10}}});
  schedules.insert({Value{std::string("St. Catharines")},
                    Value{std::string("Painter of the Soil")},
                    Value{Date{1999, 11}}});
  schedules.insert({Value{std::string("Hamilton")},
                    Value{std::string("Sorrowful Images")},
                    Value{Date{1999, 11}}});

  Database db;
  db.put(std::move(exhibitions));
  db.put(std::move(schedules));
  return db;
}

Query november_artists_query() {
  return Query("november-artists", [](const Database& db) {
    const Relation november =
        select(db.get("Schedules"), [](const Relation& rel, const Tuple& t) {
          const Value& v = rel.field(t, "Date");
          const Date* d = std::get_if<Date>(&v);
          return d != nullptr && d->month == 11;
        });
    const Relation joined = natural_join(november, db.get("Exhibitions"));
    return project(joined, {"Artist", "City"});
  });
}

Relation figure2_expected() {
  Relation expected("S", {"Artist", "City"});
  expected.insert(
      {Value{std::string("Schaefer")}, Value{std::string("St. Catharines")}});
  expected.insert(
      {Value{std::string("Aelbrecht")}, Value{std::string("Hamilton")}});
  expected.insert(
      {Value{std::string("Dieric")}, Value{std::string("Hamilton")}});
  return expected;
}

}  // namespace rtw::rtdb::ngc
