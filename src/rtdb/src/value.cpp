#include "rtw/rtdb/value.hpp"

#include <array>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

namespace {
constexpr std::array<const char*, 12> kMonths = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};
}

std::string to_string(const Date& d) {
  if (d.month < 1 || d.month > 12)
    throw rtw::core::ModelError("Date: month out of range");
  std::ostringstream out;
  out << kMonths[static_cast<std::size_t>(d.month - 1)] << " " << d.year;
  return out.str();
}

Date parse_date(const std::string& text) {
  const auto space = text.find(' ');
  if (space == std::string::npos)
    throw rtw::core::ModelError("parse_date: expected '<Month> <year>'");
  const std::string month = text.substr(0, space);
  Date d;
  d.month = 0;
  for (std::size_t i = 0; i < kMonths.size(); ++i) {
    if (month == kMonths[i]) {
      d.month = static_cast<int>(i + 1);
      break;
    }
  }
  if (d.month == 0)
    throw rtw::core::ModelError("parse_date: unknown month '" + month + "'");
  try {
    d.year = std::stoi(text.substr(space + 1));
  } catch (const std::exception&) {
    throw rtw::core::ModelError("parse_date: bad year in '" + text + "'");
  }
  return d;
}

std::string to_string(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>)
          return std::to_string(x);
        else if constexpr (std::is_same_v<T, double>) {
          std::ostringstream out;
          out << x;
          return out.str();
        } else if constexpr (std::is_same_v<T, std::string>)
          return x;
        else
          return to_string(x);
      },
      v);
}

}  // namespace rtw::rtdb
