#include "rtw/rtdb/temporal.hpp"

#include <algorithm>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

Lifespan::Lifespan(std::vector<Interval> intervals)
    : intervals_(normalize(std::move(intervals))) {}

std::vector<Interval> Lifespan::normalize(std::vector<Interval> intervals) {
  for (const auto& iv : intervals)
    if (iv.hi < iv.lo) throw ModelError("Lifespan: interval hi < lo");
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  std::vector<Interval> merged;
  for (const auto& iv : intervals) {
    // Merge overlapping or adjacent intervals ([1,3] and [4,7] fuse: the
    // chronons are discrete, so 3 and 4 are adjacent).
    if (!merged.empty() &&
        (merged.back().hi == kForever ||
         iv.lo <= merged.back().hi + 1)) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

Lifespan Lifespan::point(Tick t) { return Lifespan({{t, t}}); }
Lifespan Lifespan::interval(Tick lo, Tick hi) { return Lifespan({{lo, hi}}); }
Lifespan Lifespan::from(Tick lo) { return Lifespan({{lo, kForever}}); }
Lifespan Lifespan::always() { return Lifespan({{0, kForever}}); }

bool Lifespan::contains(Tick t) const {
  for (const auto& iv : intervals_)
    if (iv.contains(t)) return true;
  return false;
}

Tick Lifespan::duration() const {
  Tick total = 0;
  for (const auto& iv : intervals_) {
    if (iv.hi == kForever) return kForever;
    total += iv.hi - iv.lo + 1;
  }
  return total;
}

Lifespan Lifespan::unite(const Lifespan& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return Lifespan(std::move(all));
}

Lifespan Lifespan::intersect(const Lifespan& other) const {
  std::vector<Interval> out;
  for (const auto& a : intervals_) {
    for (const auto& b : other.intervals_) {
      const Tick lo = std::max(a.lo, b.lo);
      const Tick hi = std::min(a.hi, b.hi);
      if (lo <= hi) out.push_back({lo, hi});
    }
  }
  return Lifespan(std::move(out));
}

Lifespan Lifespan::complement() const {
  std::vector<Interval> out;
  Tick cursor = 0;
  for (const auto& iv : intervals_) {
    if (iv.lo > cursor) out.push_back({cursor, iv.lo - 1});
    if (iv.hi == kForever) return Lifespan(std::move(out));
    cursor = iv.hi + 1;
  }
  out.push_back({cursor, kForever});
  return Lifespan(std::move(out));
}

std::string Lifespan::to_string() const {
  if (intervals_.empty()) return "{}";
  std::ostringstream out;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i) out << " u ";
    out << "[" << intervals_[i].lo << ",";
    if (intervals_[i].hi == kForever)
      out << "inf";
    else
      out << intervals_[i].hi;
    out << "]";
  }
  return out.str();
}

void SnapshotStore::record(Tick t, Database db) {
  if (!history_.empty() && history_.rbegin()->first >= t)
    throw ModelError("SnapshotStore: transaction times must increase");
  history_.emplace(t, std::move(db));
}

std::optional<Database> SnapshotStore::instance_at(Tick t) const {
  auto it = history_.upper_bound(t);
  if (it == history_.begin()) return std::nullopt;
  --it;
  return it->second;
}

Lifespan SnapshotStore::tuple_lifespan(const std::string& rel,
                                       const Tuple& tuple) const {
  Lifespan life;
  for (auto it = history_.begin(); it != history_.end(); ++it) {
    const bool present =
        it->second.has(rel) && it->second.get(rel).contains(tuple);
    if (!present) continue;
    auto next = std::next(it);
    const Tick hi = next == history_.end() ? kForever : next->first - 1;
    life = life.unite(Lifespan::interval(it->first, hi));
  }
  return life;
}

std::vector<Tick> SnapshotStore::times() const {
  std::vector<Tick> out;
  out.reserve(history_.size());
  for (const auto& [t, db] : history_) out.push_back(t);
  return out;
}

std::optional<Relation> as_of(
    const SnapshotStore& store, Tick t,
    const std::function<Relation(const Database&)>& q) {
  if (!q) throw ModelError("as_of: null query");
  const auto db = store.instance_at(t);
  if (!db) return std::nullopt;
  return q(*db);
}

std::vector<std::pair<Tick, Relation>> query_history(
    const SnapshotStore& store,
    const std::function<Relation(const Database&)>& q) {
  if (!q) throw ModelError("query_history: null query");
  std::vector<std::pair<Tick, Relation>> out;
  for (Tick t : store.times()) out.emplace_back(t, q(*store.instance_at(t)));
  return out;
}

}  // namespace rtw::rtdb
