#include "rtw/rtdb/algebra.hpp"

#include <algorithm>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

Relation select(const Relation& r, const RowPredicate& pred) {
  Relation out(r.name(), r.sort());
  for (const auto& t : r.tuples())
    if (pred(r, t)) out.insert(t);
  return out;
}

Relation select_eq(const Relation& r, const Attribute& a, const Value& v) {
  return select(r, [&a, &v](const Relation& rel, const Tuple& t) {
    return rel.field(t, a) == v;
  });
}

Relation select_lt(const Relation& r, const Attribute& a, const Value& v) {
  return select(r, [&a, &v](const Relation& rel, const Tuple& t) {
    return rel.field(t, a) < v;
  });
}

Relation project(const Relation& r, const std::vector<Attribute>& attrs) {
  std::vector<std::size_t> indices;
  for (const auto& a : attrs) {
    const auto idx = r.attribute_index(a);
    if (!idx) throw ModelError("project: no attribute '" + a + "'");
    indices.push_back(*idx);
  }
  Relation out(r.name(), attrs);
  for (const auto& t : r.tuples()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (auto i : indices) projected.push_back(t[i]);
    out.insert(std::move(projected));
  }
  return out;
}

Relation rename(const Relation& r,
                const std::map<Attribute, Attribute>& mapping) {
  std::vector<Attribute> sort = r.sort();
  for (auto& a : sort)
    if (const auto it = mapping.find(a); it != mapping.end()) a = it->second;
  Relation out(r.name(), std::move(sort));
  for (const auto& t : r.tuples()) out.insert(t);
  return out;
}

Relation product(const Relation& r, const Relation& s) {
  std::vector<Attribute> sort = r.sort();
  for (const auto& a : s.sort()) {
    if (r.attribute_index(a))
      throw ModelError("product: attribute collision '" + a + "'");
    sort.push_back(a);
  }
  Relation out(r.name() + "x" + s.name(), std::move(sort));
  for (const auto& tr : r.tuples()) {
    for (const auto& ts : s.tuples()) {
      Tuple joined = tr;
      joined.insert(joined.end(), ts.begin(), ts.end());
      out.insert(std::move(joined));
    }
  }
  return out;
}

Relation natural_join(const Relation& r, const Relation& s) {
  // Shared attributes and their index pairs.
  std::vector<std::pair<std::size_t, std::size_t>> shared;
  std::vector<std::size_t> s_extra;
  for (std::size_t j = 0; j < s.sort().size(); ++j) {
    if (const auto i = r.attribute_index(s.sort()[j]))
      shared.emplace_back(*i, j);
    else
      s_extra.push_back(j);
  }
  std::vector<Attribute> sort = r.sort();
  for (auto j : s_extra) sort.push_back(s.sort()[j]);
  Relation out(r.name() + "|x|" + s.name(), std::move(sort));
  for (const auto& tr : r.tuples()) {
    for (const auto& ts : s.tuples()) {
      const bool match = std::all_of(
          shared.begin(), shared.end(),
          [&](const auto& p) { return tr[p.first] == ts[p.second]; });
      if (!match) continue;
      Tuple joined = tr;
      for (auto j : s_extra) joined.push_back(ts[j]);
      out.insert(std::move(joined));
    }
  }
  return out;
}

namespace {
void require_same_sort(const Relation& r, const Relation& s,
                       const char* what) {
  if (r.sort() != s.sort())
    throw ModelError(std::string(what) + ": sort mismatch");
}
}  // namespace

Relation set_union(const Relation& r, const Relation& s) {
  require_same_sort(r, s, "set_union");
  Relation out(r.name(), r.sort());
  for (const auto& t : r.tuples()) out.insert(t);
  for (const auto& t : s.tuples()) out.insert(t);
  return out;
}

Relation set_difference(const Relation& r, const Relation& s) {
  require_same_sort(r, s, "set_difference");
  Relation out(r.name(), r.sort());
  for (const auto& t : r.tuples())
    if (!s.contains(t)) out.insert(t);
  return out;
}

Relation set_intersection(const Relation& r, const Relation& s) {
  require_same_sort(r, s, "set_intersection");
  Relation out(r.name(), r.sort());
  for (const auto& t : r.tuples())
    if (s.contains(t)) out.insert(t);
  return out;
}

Relation group_count(const Relation& r, const Attribute& key) {
  const auto idx = r.attribute_index(key);
  if (!idx) throw ModelError("group_count: no attribute '" + key + "'");
  std::map<Value, std::int64_t> counts;
  // Iterate in first-seen order for deterministic output rows.
  std::vector<Value> order;
  for (const auto& t : r.tuples()) {
    if (!counts.count(t[*idx])) order.push_back(t[*idx]);
    ++counts[t[*idx]];
  }
  Relation out(r.name() + "/count", {key, "count"});
  for (const auto& k : order) out.insert({k, Value{counts[k]}});
  return out;
}

Relation group_sum(const Relation& r, const Attribute& key,
                   const Attribute& value) {
  const auto kidx = r.attribute_index(key);
  const auto vidx = r.attribute_index(value);
  if (!kidx || !vidx) throw ModelError("group_sum: missing attribute");
  std::map<Value, std::int64_t> sums;
  std::vector<Value> order;
  for (const auto& t : r.tuples()) {
    const auto* v = std::get_if<std::int64_t>(&t[*vidx]);
    if (!v) throw ModelError("group_sum: non-integer value");
    if (!sums.count(t[*kidx])) order.push_back(t[*kidx]);
    sums[t[*kidx]] += *v;
  }
  Relation out(r.name() + "/sum", {key, "sum"});
  for (const auto& k : order) out.insert({k, Value{sums[k]}});
  return out;
}

std::optional<std::int64_t> max_of(const Relation& r, const Attribute& value) {
  const auto idx = r.attribute_index(value);
  if (!idx) throw ModelError("max_of: no attribute '" + value + "'");
  std::optional<std::int64_t> best;
  for (const auto& t : r.tuples()) {
    const auto* v = std::get_if<std::int64_t>(&t[*idx]);
    if (!v) throw ModelError("max_of: non-integer value");
    if (!best || *v > *best) best = *v;
  }
  return best;
}

}  // namespace rtw::rtdb
