#include "rtw/rtdb/encode.hpp"

#include <memory>
#include <mutex>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;
using rtw::deadline::DeadlineKind;

namespace qmarks {
Symbol object() { return Symbol::marker("#"); }
Symbol field() { return Symbol::marker("@"); }
Symbol query() { return Symbol::marker("?"); }
Symbol waiting() { return Symbol::marker("wq"); }
Symbol deadline() { return Symbol::marker("dq"); }
}  // namespace qmarks

std::vector<TimedSymbol> encode_object(const std::string& name,
                                       const Value& value, Tick at) {
  std::vector<TimedSymbol> out;
  out.push_back({qmarks::object(), at});
  for (char c : name) out.push_back({Symbol::chr(c), at});
  out.push_back({qmarks::field(), at});
  for (char c : to_string(value)) out.push_back({Symbol::chr(c), at});
  return out;
}

TimedWord build_db0(const RtdbWordSpec& spec) {
  std::vector<TimedSymbol> symbols;
  for (const auto& [name, value] : spec.invariants) {
    auto group = encode_object(name, value, 0);
    symbols.insert(symbols.end(), group.begin(), group.end());
  }
  symbols.push_back({rtw::core::marks::dollar(), 0});
  for (const auto& [name, value] : spec.derived) {
    auto group = encode_object(name, value, 0);
    symbols.insert(symbols.end(), group.begin(), group.end());
  }
  symbols.push_back({rtw::core::marks::dollar(), 0});
  return TimedWord::finite(std::move(symbols));
}

TimedWord build_dbk(const RtdbWordSpec::Image& image) {
  if (!image.sampler)
    throw rtw::core::ModelError("build_dbk: image needs a sampler");
  if (image.period == 0)
    throw rtw::core::ModelError("build_dbk: zero sampling period");
  // Lazy stream of sample groups: group i carries enc(o_k(i * t_k)) at
  // time i * t_k.
  struct State {
    RtdbWordSpec::Image image;
    std::vector<TimedSymbol> cache;
    std::uint64_t next_sample = 0;
    std::mutex mutex;
  };
  auto state = std::make_shared<State>();
  state->image = image;
  rtw::core::GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;  // period >= 1
  return TimedWord::generator(
      [state](std::uint64_t i) {
        std::lock_guard lock(state->mutex);
        while (state->cache.size() <= i) {
          const Tick t = state->next_sample * state->image.period;
          auto group =
              encode_object(state->image.name, state->image.sampler(t), t);
          state->cache.insert(state->cache.end(), group.begin(), group.end());
          ++state->next_sample;
        }
        return state->cache[i];
      },
      traits, "db_k(" + image.name + ")");
}

TimedWord build_dbB(const RtdbWordSpec& spec) {
  std::vector<TimedWord> parts;
  parts.push_back(build_db0(spec));
  for (const auto& image : spec.images) parts.push_back(build_dbk(image));
  return rtw::core::concat_all(parts);
}

Database render_relational(const RtdbWordSpec& spec, Tick t) {
  Relation objects("Objects", {"Name", "Kind", "Value", "ValidTime"});
  for (const auto& [name, value] : spec.invariants)
    objects.insert({Value{name}, Value{std::string("invariant")}, value,
                    Value{static_cast<std::int64_t>(t)}});
  for (const auto& [name, value] : spec.derived)
    objects.insert({Value{name}, Value{std::string("derived")}, value,
                    Value{std::int64_t{0}}});
  for (const auto& image : spec.images) {
    const Tick last = (t / image.period) * image.period;
    objects.insert({Value{image.name}, Value{std::string("image")},
                    image.sampler(last),
                    Value{static_cast<std::int64_t>(last)}});
  }
  Database db;
  db.put(std::move(objects));
  return db;
}

namespace {

/// Appends the query header block at `at`: ? [min] s-values $ qname $.
void append_query_header(std::vector<TimedSymbol>& out,
                         const AperiodicQuerySpec& spec, Tick at) {
  out.push_back({qmarks::query(), at});
  if (spec.usefulness.kind() != DeadlineKind::None)
    out.push_back({Symbol::nat(spec.min_acceptable), at});
  for (std::size_t i = 0; i < spec.candidate.size(); ++i) {
    if (i) out.push_back({qmarks::field(), at});
    for (char c : to_string(spec.candidate[i]))
      out.push_back({Symbol::chr(c), at});
  }
  out.push_back({rtw::core::marks::dollar(), at});
  for (char c : spec.query) out.push_back({Symbol::chr(c), at});
  out.push_back({rtw::core::marks::dollar(), at});
}

}  // namespace

TimedWord build_aq(const AperiodicQuerySpec& spec, Tick decay_span) {
  const auto& u = spec.usefulness;
  std::vector<TimedSymbol> prefix;
  append_query_header(prefix, spec, spec.issue_time);
  const Tick t = spec.issue_time;
  const Symbol wq = qmarks::waiting();
  const Symbol dq = qmarks::deadline();

  if (u.kind() == DeadlineKind::None)
    return TimedWord::lasso(std::move(prefix), {{wq, t + 1}}, 1);

  if (u.deadline() == 0)
    throw rtw::core::ModelError("build_aq: deadline at relative time 0");
  if (spec.min_acceptable > u.max())
    throw rtw::core::ModelError("build_aq: min acceptable above max");
  for (Tick rel = 1; rel < u.deadline(); ++rel)
    prefix.push_back({wq, t + rel});

  if (u.kind() == DeadlineKind::Firm)
    return TimedWord::lasso(
        std::move(prefix),
        {{dq, t + u.deadline()}, {Symbol::nat(0), t + u.deadline()}}, 1);

  // Soft: (dq, floor(u(t_d + rel))) pairs until the decay reaches zero.
  const Tick zero_rel = u.first_below(1, u.deadline() + decay_span);
  if (u.at(zero_rel) != 0)
    throw rtw::core::ModelError("build_aq: decay does not reach zero");
  for (Tick rel = u.deadline(); rel < zero_rel; ++rel) {
    prefix.push_back({dq, t + rel});
    prefix.push_back({Symbol::nat(u.at(rel)), t + rel});
  }
  return TimedWord::lasso(std::move(prefix),
                          {{dq, t + zero_rel}, {Symbol::nat(0), t + zero_rel}},
                          1);
}

TimedWord build_pq(const PeriodicQuerySpec& spec) {
  if (!spec.candidate)
    throw rtw::core::ModelError("build_pq: null candidate fn");
  if (spec.period == 0)
    throw rtw::core::ModelError("build_pq: zero period");

  // The pq word is the infinite merge of per-invocation aq words.  Every
  // invocation contributes symbols at every subsequent tick (wq forever or
  // (dq, u) pairs), so the word is produced tick by tick: at tick T emit,
  // in invocation order (Definition 3.5 item 3: earlier operand first),
  // each active invocation's symbols for T.
  struct State {
    PeriodicQuerySpec spec;
    std::vector<TimedSymbol> cache;
    Tick next_tick = 0;
    std::mutex mutex;

    void emit_tick(Tick tick) {
      const auto& sp = spec;
      if (tick < sp.issue_time) return;
      const Symbol wq = qmarks::waiting();
      const Symbol dq = qmarks::deadline();
      const std::uint64_t invocations =
          (tick - sp.issue_time) / sp.period + 1;
      for (std::uint64_t i = 0; i < invocations; ++i) {
        const Tick issued = sp.issue_time + i * sp.period;
        const Tick rel = tick - issued;
        if (rel == 0) {
          AperiodicQuerySpec one;
          one.query = sp.query;
          one.candidate = sp.candidate(i);
          one.issue_time = issued;
          one.usefulness = sp.usefulness;
          one.min_acceptable = sp.min_acceptable;
          append_query_header(cache, one, issued);
          continue;
        }
        if (sp.usefulness.kind() == DeadlineKind::None ||
            rel < sp.usefulness.deadline()) {
          cache.push_back({wq, tick});
        } else {
          cache.push_back({dq, tick});
          cache.push_back({Symbol::nat(sp.usefulness.at(rel)), tick});
        }
      }
    }
  };
  auto state = std::make_shared<State>();
  state->spec = spec;
  rtw::core::GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;  // Lemma 5.1
  return TimedWord::generator(
      [state](std::uint64_t i) {
        std::lock_guard lock(state->mutex);
        while (state->cache.size() <= i) {
          state->emit_tick(state->next_tick);
          ++state->next_tick;
        }
        return state->cache[i];
      },
      traits, "pq(" + spec.query + ")");
}

std::optional<std::uint64_t> lemma51_index(const TimedWord& word, Tick k,
                                           std::uint64_t scan_limit) {
  auto cur = word.cursor();
  for (; cur.index() < scan_limit && !cur.done(); cur.advance())
    if (cur.current().time >= k) return cur.index();
  return std::nullopt;
}

}  // namespace rtw::rtdb
