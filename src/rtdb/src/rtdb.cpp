#include "rtw/rtdb/rtdb.hpp"

#include <algorithm>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

RealTimeDatabase::RealTimeDatabase(std::size_t archive_depth)
    : archive_depth_(archive_depth) {
  if (archive_depth == 0)
    throw ModelError("RealTimeDatabase: archive depth must be >= 1");
}

void RealTimeDatabase::add_image(ImageObjectSpec spec) {
  if (!spec.sampler)
    throw ModelError("RealTimeDatabase: image object needs a sampler");
  if (spec.period == 0)
    throw ModelError("RealTimeDatabase: image period must be >= 1");
  if (value_of(spec.name, 0))
    throw ModelError("RealTimeDatabase: duplicate object '" + spec.name + "'");
  images_.push_back(ImageState{std::move(spec), {}});
}

void RealTimeDatabase::add_derived(DerivedObjectSpec spec) {
  if (!spec.derive)
    throw ModelError("RealTimeDatabase: derived object needs a function");
  if (value_of(spec.name, 0))
    throw ModelError("RealTimeDatabase: duplicate object '" + spec.name + "'");
  derived_.push_back(DerivedState{std::move(spec), std::nullopt});
}

void RealTimeDatabase::add_invariant(std::string name, Value value) {
  if (value_of(name, 0))
    throw ModelError("RealTimeDatabase: duplicate object '" + name + "'");
  invariants_.emplace(std::move(name), std::move(value));
}

void RealTimeDatabase::attach_rules(RuleEngine* engine, Database* rules_db) {
  rule_engine_ = engine;
  rules_db_ = rules_db;
}

void RealTimeDatabase::tick(Tick now) {
  bool sampled = false;
  std::vector<Event> events;
  for (auto& img : images_) {
    if (now % img.spec.period != 0) continue;
    TimedValue tv{img.spec.sampler(now), now};
    img.history.push_back(tv);
    if (img.history.size() > archive_depth_)
      img.history.erase(img.history.begin());
    sampled = true;
    if (rule_engine_ && rules_db_) {
      Event e;
      e.name = "Sample";
      e.time = now;
      e.attributes["object"] = Value{img.spec.name};
      e.attributes["value"] = tv.value;
      events.push_back(std::move(e));
    }
  }
  if (sampled) recompute_derived(now);
  if (rule_engine_ && rules_db_ && !events.empty())
    rule_engine_->process_batch(*rules_db_, std::move(events));
}

void RealTimeDatabase::recompute_derived(Tick now) {
  // Derived objects may depend on other derived objects declared earlier;
  // evaluate in declaration order.
  for (auto& d : derived_) {
    std::vector<TimedValue> inputs;
    bool ready = true;
    for (const auto& in : d.spec.inputs) {
      const auto v = value_of(in, now);
      if (!v) {
        ready = false;
        break;
      }
      inputs.push_back(*v);
    }
    if (!ready) continue;
    // Timestamp of a derived object = oldest valid time among its inputs.
    Tick oldest = now;
    for (const auto& in : inputs) oldest = std::min(oldest, in.valid_time);
    d.current = TimedValue{d.spec.derive(inputs), oldest};
  }
}

std::optional<TimedValue> RealTimeDatabase::image_value(
    const std::string& name) const {
  for (const auto& img : images_)
    if (img.spec.name == name && !img.history.empty())
      return img.history.back();
  return std::nullopt;
}

std::optional<TimedValue> RealTimeDatabase::derived_value(
    const std::string& name) const {
  for (const auto& d : derived_)
    if (d.spec.name == name) return d.current;
  return std::nullopt;
}

std::optional<TimedValue> RealTimeDatabase::invariant_value(
    const std::string& name, Tick now) const {
  const auto it = invariants_.find(name);
  if (it == invariants_.end()) return std::nullopt;
  // An invariant object's timestamp, viewed temporally, is always `now`.
  return TimedValue{it->second, now};
}

std::optional<TimedValue> RealTimeDatabase::value_of(const std::string& name,
                                                     Tick now) const {
  for (const auto& img : images_)
    if (img.spec.name == name)
      return img.history.empty() ? std::nullopt
                                 : std::optional(img.history.back());
  if (const auto d = derived_value(name)) return d;
  return invariant_value(name, now);
}

std::vector<TimedValue> RealTimeDatabase::archive(
    const std::string& name) const {
  for (const auto& img : images_)
    if (img.spec.name == name) return img.history;
  throw ModelError("RealTimeDatabase: no image object '" + name + "'");
}

bool RealTimeDatabase::absolutely_consistent(Tick now, Tick t_a) const {
  for (const auto& img : images_) {
    if (img.history.empty()) return false;
    if (age(img.history.back(), now) > t_a) return false;
  }
  // Ages of data used to derive the derived objects must also be bounded:
  // a derived object's timestamp is its oldest input's valid time.
  for (const auto& d : derived_) {
    if (!d.current) return false;
    if (age(*d.current, now) > t_a) return false;
  }
  return true;
}

bool RealTimeDatabase::relatively_consistent(Tick t_r) const {
  std::vector<TimedValue> current;
  for (const auto& img : images_) {
    if (img.history.empty()) return false;
    current.push_back(img.history.back());
  }
  for (std::size_t i = 0; i < current.size(); ++i)
    for (std::size_t j = i + 1; j < current.size(); ++j)
      if (dispersion(current[i], current[j]) > t_r) return false;
  return true;
}

std::vector<std::string> RealTimeDatabase::image_names() const {
  std::vector<std::string> out;
  for (const auto& img : images_) out.push_back(img.spec.name);
  return out;
}

std::vector<std::string> RealTimeDatabase::derived_names() const {
  std::vector<std::string> out;
  for (const auto& d : derived_) out.push_back(d.spec.name);
  return out;
}

std::vector<std::string> RealTimeDatabase::invariant_names() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : invariants_) out.push_back(name);
  return out;
}

Tick RealTimeDatabase::image_period(const std::string& name) const {
  for (const auto& img : images_)
    if (img.spec.name == name) return img.spec.period;
  throw ModelError("RealTimeDatabase: no image object '" + name + "'");
}

}  // namespace rtw::rtdb
