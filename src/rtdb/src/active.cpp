#include "rtw/rtdb/active.hpp"

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

std::string to_string(FiringMode m) {
  switch (m) {
    case FiringMode::Immediate:
      return "immediate";
    case FiringMode::Deferred:
      return "deferred";
    case FiringMode::Concurrent:
      return "concurrent";
  }
  return "?";
}

RuleEngine::RuleEngine(std::size_t cascade_limit)
    : cascade_limit_(cascade_limit) {}

void RuleEngine::add_rule(Rule rule) {
  if (!rule.condition || !rule.action)
    throw ModelError("RuleEngine: rule '" + rule.name +
                     "' needs condition and action");
  rules_.push_back(std::move(rule));
}

FiringReport RuleEngine::process(Database& db, Event event) {
  std::vector<Event> batch;
  batch.push_back(std::move(event));
  return process_batch(db, std::move(batch));
}

FiringReport RuleEngine::process_batch(Database& db,
                                       std::vector<Event> events) {
  FiringReport report;
  std::deque<Event> immediate_queue(events.begin(), events.end());
  // (rule index, triggering event) pairs postponed to later phases.
  std::vector<std::pair<std::size_t, Event>> deferred;
  std::vector<std::pair<std::size_t, Event>> concurrent;

  const EmitFn emit = [&](Event e) {
    ++report.cascades;
    if (report.cascades > cascade_limit_) {
      report.cascade_limit_hit = true;
      return;  // drop: runaway cascade
    }
    immediate_queue.push_back(std::move(e));
  };

  // Phase 1: absorb events; immediate rules fire inline (and may cascade),
  // other modes are collected.
  std::size_t absorbed = 0;
  while (!immediate_queue.empty()) {
    if (++absorbed > cascade_limit_ + events.size() + 1) {
      report.cascade_limit_hit = true;
      break;
    }
    const Event current = std::move(immediate_queue.front());
    immediate_queue.pop_front();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = rules_[i];
      if (rule.event != current.name) continue;
      switch (rule.mode) {
        case FiringMode::Immediate:
          if (rule.condition(db, current)) {
            report.fired.push_back(rule.name);
            rule.action(db, current, emit);
          }
          break;
        case FiringMode::Deferred:
          deferred.emplace_back(i, current);
          break;
        case FiringMode::Concurrent:
          concurrent.emplace_back(i, current);
          break;
      }
    }
  }

  // Phase 2: deferred rules fire on the settled state; their conditions are
  // re-evaluated now (the defining property of deferred firing).
  for (const auto& [i, ev] : deferred) {
    const Rule& rule = rules_[i];
    if (rule.condition(db, ev)) {
      report.fired.push_back(rule.name);
      rule.action(db, ev, emit);
    }
  }

  // Phase 3: concurrent actions, deterministically serialized last.
  for (const auto& [i, ev] : concurrent) {
    const Rule& rule = rules_[i];
    if (rule.condition(db, ev)) {
      report.fired.push_back(rule.name);
      rule.action(db, ev, emit);
    }
  }

  // Events emitted by phase 2/3 actions trigger a follow-up immediate wave.
  while (!immediate_queue.empty() && !report.cascade_limit_hit) {
    const Event current = std::move(immediate_queue.front());
    immediate_queue.pop_front();
    for (const auto& rule : rules_) {
      if (rule.event != current.name ||
          rule.mode != FiringMode::Immediate)
        continue;
      if (rule.condition(db, current)) {
        report.fired.push_back(rule.name);
        rule.action(db, current, emit);
      }
    }
  }
  return report;
}

}  // namespace rtw::rtdb
