#include "rtw/rtdb/relation.hpp"

#include <algorithm>
#include <sstream>

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

Relation::Relation(std::string name, std::vector<Attribute> sort)
    : name_(std::move(name)), sort_(std::move(sort)) {
  for (std::size_t i = 0; i < sort_.size(); ++i)
    for (std::size_t j = i + 1; j < sort_.size(); ++j)
      if (sort_[i] == sort_[j])
        throw ModelError("Relation: duplicate attribute '" + sort_[i] + "'");
}

std::optional<std::size_t> Relation::attribute_index(const Attribute& a) const {
  for (std::size_t i = 0; i < sort_.size(); ++i)
    if (sort_[i] == a) return i;
  return std::nullopt;
}

bool Relation::insert(Tuple tuple) {
  if (tuple.size() != sort_.size())
    throw ModelError("Relation::insert: arity mismatch in " + name_);
  if (contains(tuple)) return false;
  tuples_.push_back(std::move(tuple));
  return true;
}

bool Relation::contains(const Tuple& tuple) const {
  return std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end();
}

const Value& Relation::field(const Tuple& tuple, const Attribute& a) const {
  const auto idx = attribute_index(a);
  if (!idx)
    throw ModelError("Relation::field: no attribute '" + a + "' in " + name_);
  if (tuple.size() != sort_.size())
    throw ModelError("Relation::field: foreign tuple arity");
  return tuple[*idx];
}

std::string Relation::to_string() const {
  // Column widths.
  std::vector<std::size_t> widths(sort_.size());
  for (std::size_t c = 0; c < sort_.size(); ++c) widths[c] = sort_[c].size();
  std::vector<std::vector<std::string>> rendered;
  for (const auto& t : tuples_) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < t.size(); ++c) {
      row.push_back(rtdb::to_string(t[c]));
      widths[c] = std::max(widths[c], row.back().size());
    }
    rendered.push_back(std::move(row));
  }
  std::ostringstream out;
  out << name_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  std::vector<std::string> header(sort_.begin(), sort_.end());
  emit(header);
  std::size_t rule = 2;
  for (auto w : widths) rule += w + 2;
  out << "  " << std::string(rule, '-') << "\n";
  for (const auto& row : rendered) emit(row);
  return out.str();
}

void Database::put(Relation relation) {
  byname_[relation.name()] = std::move(relation);
}

bool Database::has(const std::string& name) const {
  return byname_.count(name) > 0;
}

const Relation& Database::get(const std::string& name) const {
  const auto it = byname_.find(name);
  if (it == byname_.end())
    throw ModelError("Database: no relation '" + name + "'");
  return it->second;
}

Relation& Database::get(const std::string& name) {
  const auto it = byname_.find(name);
  if (it == byname_.end())
    throw ModelError("Database: no relation '" + name + "'");
  return it->second;
}

std::vector<std::string> Database::schema() const {
  std::vector<std::string> names;
  names.reserve(byname_.size());
  for (const auto& [name, rel] : byname_) names.push_back(name);
  return names;
}

std::size_t Database::size() const {
  std::size_t n = 0;
  for (const auto& [name, rel] : byname_) n += rel.size();
  return n;
}

std::string Database::to_string() const {
  std::ostringstream out;
  for (const auto& [name, rel] : byname_) out << rel.to_string() << "\n";
  return out.str();
}

}  // namespace rtw::rtdb
