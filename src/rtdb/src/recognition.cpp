#include "rtw/rtdb/recognition.hpp"

#include <algorithm>
#include <cctype>

#include "rtw/core/error.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/engine/engine.hpp"
#include "rtw/obs/metrics.hpp"
#include "rtw/obs/sink.hpp"

namespace rtw::rtdb {

using rtw::core::StepContext;
using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

// ------------------------------------------------------------- classical

bool recognition_holds(const Query& q, const Database& db, const Tuple& u) {
  return q(db).contains(u);
}

TimedWord classical_recognition_word(const Database& db, const Tuple& u) {
  std::vector<TimedSymbol> symbols;
  auto append_text = [&](const std::string& text) {
    for (char c : text) symbols.push_back({Symbol::chr(c), 0});
  };
  for (const auto& name : db.schema()) {
    const Relation& rel = db.get(name);
    for (const auto& t : rel.tuples()) {
      symbols.push_back({qmarks::object(), 0});
      append_text(name);
      for (const auto& v : t) {
        symbols.push_back({qmarks::field(), 0});
        append_text(to_string(v));
      }
    }
  }
  symbols.push_back({rtw::core::marks::dollar(), 0});
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (i) symbols.push_back({qmarks::field(), 0});
    append_text(to_string(u[i]));
  }
  return TimedWord::finite(std::move(symbols));
}

// -------------------------------------------------------------- real-time

QueryCostModel linear_cost() {
  return [](std::size_t db_size) {
    return std::max<Tick>(1, static_cast<Tick>(db_size));
  };
}

namespace {

/// Parses an encoded value back: integer if all digits, then date, then
/// plain string.
Value parse_value(const std::string& text) {
  if (!text.empty() &&
      std::all_of(text.begin(), text.end(),
                  [](unsigned char c) { return std::isdigit(c); })) {
    try {
      return Value{static_cast<std::int64_t>(std::stoll(text))};
    } catch (const std::exception&) {
      // fall through to string
    }
  }
  try {
    return Value{parse_date(text)};
  } catch (const rtw::core::ModelError&) {
    return Value{text};
  }
}

}  // namespace

RecognitionAcceptor::RecognitionAcceptor(QueryCatalog catalog,
                                         QueryCostModel cost, Tick patience)
    : catalog_(std::move(catalog)),
      cost_(cost ? std::move(cost) : linear_cost()),
      patience_(patience) {}

void RecognitionAcceptor::reset() {
  objects_ = Relation("Objects", {"Name", "Kind", "Value", "ValidTime"});
  db0_dollars_ = 0;
  group_.clear();
  in_group_ = false;
  group_time_ = 0;
  pending_.reset();
  ready_.clear();
  running_.reset();
  served_ = 0;
  failed_ = 0;
  lock_.reset();
  accepting_since_.reset();
  invocations_seen_ = 0;
}

Tuple RecognitionAcceptor::parse_candidate(const std::vector<Symbol>& body,
                                           std::size_t end) const {
  // body[0..end) is the candidate's field-separated value list.
  Tuple tuple;
  std::string field;
  for (std::size_t i = 0; i < end; ++i) {
    if (body[i] == qmarks::field()) {
      tuple.push_back(parse_value(field));
      field.clear();
    } else if (body[i].is_char()) {
      field += body[i].as_char();
    }
  }
  tuple.push_back(parse_value(field));
  return tuple;
}

void RecognitionAcceptor::ingest(const TimedSymbol& ts) {
  const Symbol sym = ts.sym;
  const Symbol obj = qmarks::object();
  const Symbol fld = qmarks::field();
  const Symbol qry = qmarks::query();
  const Symbol dollar = rtw::core::marks::dollar();

  // ---- query header capture has priority once opened.
  if (pending_ && !pending_->complete) {
    if (sym == dollar) {
      if (++pending_->dollars_seen == 1) {
        pending_->split = pending_->body.size();
      } else {
        pending_->complete = true;
        ready_.push_back(std::move(*pending_));
        pending_.reset();
      }
      return;
    }
    if (sym.is_nat() && pending_->body.empty() &&
        pending_->dollars_seen == 0 && !pending_->min_acceptable) {
      pending_->min_acceptable = sym.as_nat();
      return;
    }
    pending_->body.push_back(sym);
    return;
  }

  // ---- group closure on any structural marker.
  const bool structural = sym == obj || sym == qry || sym == dollar ||
                          sym == qmarks::waiting() ||
                          sym == qmarks::deadline() || sym.is_nat();
  if (in_group_ && (structural || ts.time != group_time_)) {
    // Parse "#name@value" into an Objects upsert.
    std::string name, value;
    bool after_field = false;
    for (const auto& s : group_) {
      if (s == fld) {
        after_field = true;
      } else if (s.is_char()) {
        (after_field ? value : name) += s.as_char();
      }
    }
    if (!name.empty()) {
      const std::string kind = db0_dollars_ == 0   ? "invariant"
                               : db0_dollars_ == 1 ? "derived"
                                                   : "image";
      objects_.erase_if([&](const Tuple& t) {
        return t[0] == Value{name};
      });
      objects_.insert({Value{name}, Value{kind}, parse_value(value),
                       Value{static_cast<std::int64_t>(group_time_)}});
    }
    in_group_ = false;
    group_.clear();
  }

  if (sym == obj) {
    in_group_ = true;
    group_time_ = ts.time;
    group_.clear();
    return;
  }
  if (in_group_) {
    group_.push_back(sym);
    return;
  }
  if (sym == dollar && db0_dollars_ < 2) {
    ++db0_dollars_;
    return;
  }
  if (sym == qry) {
    pending_ = PendingQuery{};
    pending_->issue_time = ts.time;
    pending_->invocation_index = invocations_seen_++;
    return;
  }
  // wq / dq / usefulness symbols are consumed positionally by the verdict
  // logic in on_tick; nothing to do here.
}

void RecognitionAcceptor::start_running(Tick now) {
  if (running_ || ready_.empty()) return;
  PendingQuery next = std::move(ready_.front());
  ready_.erase(ready_.begin());

  RunningQuery run;
  run.issue_time = next.issue_time;
  run.min_acceptable = next.min_acceptable.value_or(0);
  run.invocation_index = next.invocation_index;
  // Split body into candidate ($-free by construction: the first dollar
  // was consumed by the capture) and query name: the capture stored
  // candidate-symbols then (after dollar 1) the name chars.  We re-split
  // here on the recorded split point.
  run.candidate = parse_candidate(next.body, next.split);
  std::string qname;
  for (std::size_t i = next.split; i < next.body.size(); ++i)
    if (next.body[i].is_char()) qname += next.body[i].as_char();
  run.name = qname;
  run.completes_at = now + cost_(objects_.size());
  run.snapshot = objects_;
  running_ = std::move(run);
}

void RecognitionAcceptor::on_tick(const StepContext& ctx) {
  if (lock_) {
    if (*lock_ && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
    return;
  }

  for (const auto& ts : ctx.arrivals) ingest(ts);

  // Launch the next query evaluation if idle.
  start_running(ctx.now);

  // Provisional s_f: keep writing f after a success; a fresh query block
  // revokes it, a quiet patience window makes it a hard lock.
  if (accepting_since_) {
    if (running_ || pending_ || !ready_.empty()) {
      accepting_since_.reset();
    } else {
      if (ctx.now - *accepting_since_ >= patience_) lock_ = true;
      if (ctx.out.can_write(ctx.now))
        ctx.out.write(ctx.now, ctx.out.accept_symbol());
      return;
    }
  }

  if (!running_ || ctx.now < running_->completes_at) return;

  // ---- P_w completes now; P_m reads this tick's stream contributions to
  // find the running invocation's own wq / (dq, usefulness) symbol.  The
  // Definition 3.5 merge emits contributions in invocation order, so the
  // invocation's index selects its contribution.
  struct Contribution {
    bool is_deadline = false;
    std::uint64_t usefulness = 0;
  };
  std::vector<Contribution> contributions;
  bool expect_usefulness = false;
  std::size_t skip_header = 0;  // depth counter for '?'-blocks in this tick
  for (const auto& ts : ctx.arrivals) {
    if (ts.time != ctx.now) continue;  // only this tick's symbols
    if (ts.sym == qmarks::query()) {
      skip_header = 1;  // a newly issued invocation's header: counts as a
      contributions.push_back({});  // "present, not late" contribution
      continue;
    }
    if (skip_header) {
      if (ts.sym == rtw::core::marks::dollar() && ++skip_header == 3)
        skip_header = 0;
      continue;
    }
    if (ts.sym == qmarks::waiting()) {
      contributions.push_back({});
      continue;
    }
    if (ts.sym == qmarks::deadline()) {
      contributions.push_back({true, 0});
      expect_usefulness = true;
      continue;
    }
    if (expect_usefulness && ts.sym.is_nat()) {
      contributions.back().usefulness = ts.sym.as_nat();
      expect_usefulness = false;
      continue;
    }
  }

  bool acceptable = true;
  if (running_->invocation_index < contributions.size()) {
    const auto& mine = contributions[running_->invocation_index];
    if (mine.is_deadline) acceptable = mine.usefulness >= running_->min_acceptable;
  }
  // (No contribution at all can only happen on malformed words; treat as
  // within deadline.)

  bool matched = false;
  if (catalog_.has(running_->name)) {
    Database db;
    db.put(running_->snapshot);
    const Relation result = catalog_.get(running_->name)(db);
    matched = result.contains(running_->candidate);
  }

  const bool success = acceptable && matched;
  running_.reset();
  if (!success) {
    ++failed_;
    if (rtw::obs::enabled()) {
      static auto& failed =
          rtw::obs::MetricsRegistry::instance().counter(
              "rtdb.recognition.failed");
      failed.add(1);
    }
    lock_ = false;  // a failure prevents all further f's
    return;
  }
  ++served_;
  if (rtw::obs::enabled()) {
    static auto& served = rtw::obs::MetricsRegistry::instance().counter(
        "rtdb.recognition.served");
    served.add(1);
  }
  if (ctx.out.can_write(ctx.now))
    ctx.out.write(ctx.now, ctx.out.accept_symbol());
  if (ready_.empty() && !pending_) accepting_since_ = ctx.now;
}

std::optional<bool> RecognitionAcceptor::locked() const { return lock_; }

namespace {

rtw::engine::AlgorithmFactory recognition_factory(QueryCatalog catalog,
                                                  QueryCostModel cost) {
  auto shared_catalog = std::make_shared<QueryCatalog>(std::move(catalog));
  return [shared_catalog, cost] {
    return std::make_unique<RecognitionAcceptor>(*shared_catalog, cost);
  };
}

}  // namespace

std::unique_ptr<rtw::core::OnlineAcceptor> make_online_recognition(
    QueryCatalog catalog, QueryCostModel cost, Tick patience,
    rtw::core::RunOptions options) {
  auto algorithm = std::make_unique<RecognitionAcceptor>(
      std::move(catalog), std::move(cost), patience);
  return std::make_unique<rtw::core::EngineOnlineAcceptor>(
      std::move(algorithm), options);
}

rtw::core::TimedLanguage recognition_language(QueryCatalog catalog,
                                              QueryCostModel cost,
                                              Tick horizon) {
  rtw::core::RunOptions options;
  options.horizon = horizon;
  return rtw::core::TimedLanguage(
      "L_q", rtw::engine::membership(
                 recognition_factory(std::move(catalog), std::move(cost)),
                 options));
}

std::vector<bool> recognition_sweep(QueryCatalog catalog, QueryCostModel cost,
                                    const std::vector<rtw::core::TimedWord>& words,
                                    Tick horizon,
                                    const rtw::engine::BatchOptions& batch) {
  RTW_SPAN("rtdb.recognition.sweep");
  rtw::core::RunOptions options;
  options.horizon = horizon;
  return rtw::engine::membership_sweep(
      recognition_factory(std::move(catalog), std::move(cost)), words, options,
      /*require_exact=*/false, batch);
}

}  // namespace rtw::rtdb
