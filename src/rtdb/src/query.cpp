#include "rtw/rtdb/query.hpp"

#include "rtw/core/error.hpp"

namespace rtw::rtdb {

using rtw::core::ModelError;

Query::Query(std::string name, Fn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  if (!fn_) throw ModelError("Query: null function");
  if (name_.empty()) throw ModelError("Query: empty name");
}

Relation Query::operator()(const Database& db) const {
  if (!fn_) throw ModelError("Query: invoking an empty query");
  return fn_(db);
}

void QueryCatalog::add(Query query) {
  if (!query.valid()) throw ModelError("QueryCatalog: invalid query");
  const std::string name = query.name();
  if (!queries_.emplace(name, std::move(query)).second)
    throw ModelError("QueryCatalog: duplicate query '" + name + "'");
}

bool QueryCatalog::has(const std::string& name) const {
  return queries_.count(name) > 0;
}

const Query& QueryCatalog::get(const std::string& name) const {
  const auto it = queries_.find(name);
  if (it == queries_.end())
    throw ModelError("QueryCatalog: no query '" + name + "'");
  return it->second;
}

}  // namespace rtw::rtdb
