// Tests for Definition 3.5 concatenation, Definition 3.6 Kleene closure,
// and the Theorem 3.3 closure properties of timed omega-languages.

#include <gtest/gtest.h>

#include "rtw/core/concat.hpp"
#include "rtw/core/error.hpp"
#include "rtw/core/language.hpp"
#include "rtw/core/timed_word.hpp"

namespace {

using namespace rtw::core;

TimedWord fin(std::string_view text, std::vector<Tick> times) {
  return TimedWord::finite(symbols_of(text), times);
}

// ------------------------------------------------------------ concat

TEST(ConcatTest, MergesByArrivalTime) {
  // Definition 3.5: symbols ordered by nondecreasing arrival time.
  auto a = fin("ac", {1, 5});
  auto b = fin("bd", {2, 6});
  auto m = concat(a, b);
  ASSERT_EQ(m.length(), std::uint64_t{4});
  EXPECT_EQ(m.symbols(4), symbols_of("abcd"));
  EXPECT_EQ(m.times(4), (std::vector<Tick>{1, 2, 5, 6}));
}

TEST(ConcatTest, Item3FirstOperandWinsTies) {
  // "if sigma_1 and sigma_2 ... arrive at the same moment, sigma_1 precedes"
  auto a = fin("x", {4});
  auto b = fin("y", {4});
  EXPECT_EQ(concat(a, b).symbols(2), symbols_of("xy"));
  EXPECT_EQ(concat(b, a).symbols(2), symbols_of("yx"));
}

TEST(ConcatTest, Item2EqualTimeBlocksStayContiguous) {
  // A maximal equal-time block of one operand remains a contiguous subword.
  auto a = fin("pq", {3, 3});
  auto b = fin("rs", {3, 3});
  auto m = concat(a, b);
  EXPECT_EQ(m.symbols(4), symbols_of("pqrs"));
}

TEST(ConcatTest, Item1BothOperandsAreSubsequences) {
  auto a = fin("ace", {0, 2, 7});
  auto b = fin("bdf", {1, 2, 9});
  auto m = concat(a, b);
  EXPECT_TRUE(is_subsequence(a.prefix(3), m, 10));
  EXPECT_TRUE(is_subsequence(b.prefix(3), m, 10));
  EXPECT_EQ(*m.length(), 6u);  // nothing extra
}

TEST(ConcatTest, EmptyIsIdentity) {
  auto a = fin("ab", {1, 2});
  EXPECT_EQ(concat(TimedWord(), a).symbols(2), a.symbols(2));
  EXPECT_EQ(concat(a, TimedWord()).symbols(2), a.symbols(2));
}

TEST(ConcatTest, ResultIsMonotone) {
  auto a = fin("aaa", {0, 5, 9});
  auto b = fin("bbbb", {2, 3, 7, 20});
  auto m = concat(a, b);
  EXPECT_EQ(m.monotone(), Certificate::Proven);
}

TEST(ConcatTest, InfiniteOperandYieldsGeneratorWord) {
  auto a = fin("xy", {1, 3});
  auto inf = TimedWord::lasso({}, {{Symbol::chr('z'), 2}}, 2);
  auto m = concat(a, inf);
  EXPECT_TRUE(m.infinite());
  // merge: x@1 z@2 y@3 z@4 z@6 ...
  EXPECT_EQ(m.at(0).sym, Symbol::chr('x'));
  EXPECT_EQ(m.at(1).sym, Symbol::chr('z'));
  EXPECT_EQ(m.at(2).sym, Symbol::chr('y'));
  EXPECT_EQ(m.at(3).time, 4u);
  EXPECT_EQ(m.monotone(), Certificate::Proven);
}

TEST(ConcatTest, WellBehavednessPropagates) {
  // Concatenating a finite word with a proven well-behaved infinite word
  // yields a proven well-behaved word (key to db_B, section 5.1.3).
  auto finw = fin("ab", {0, 0});
  auto wb = TimedWord::lasso({}, {{Symbol::chr('u'), 1}}, 1);
  ASSERT_EQ(wb.well_behaved(), Certificate::Proven);
  auto m = concat(finw, wb);
  EXPECT_EQ(m.well_behaved(), Certificate::Proven);
}

TEST(ConcatTest, TwoInfiniteWordsMerge) {
  auto a = TimedWord::lasso({}, {{Symbol::chr('a'), 2}}, 2);   // 2,4,6,...
  auto b = TimedWord::lasso({}, {{Symbol::chr('b'), 3}}, 3);   // 3,6,9,...
  auto m = concat(a, b);
  EXPECT_TRUE(m.infinite());
  // 2a 3b 4a 6a 6b 8a 9b ... -- at time 6 the first word's symbol precedes.
  EXPECT_EQ(m.at(0).sym, Symbol::chr('a'));
  EXPECT_EQ(m.at(1).sym, Symbol::chr('b'));
  EXPECT_EQ(m.at(2).sym, Symbol::chr('a'));
  EXPECT_EQ(m.at(3).sym, Symbol::chr('a'));
  EXPECT_EQ(m.at(3).time, 6u);
  EXPECT_EQ(m.at(4).sym, Symbol::chr('b'));
  EXPECT_EQ(m.at(4).time, 6u);
  EXPECT_EQ(m.well_behaved(), Certificate::Proven);
}

TEST(ConcatTest, ConcatAllFoldsLeft) {
  auto w1 = fin("a", {1});
  auto w2 = fin("b", {1});
  auto w3 = fin("c", {0});
  auto m = concat_all({w1, w2, w3});
  // c arrives first; a precedes b at time 1 (left fold keeps w1 before w2).
  EXPECT_EQ(m.symbols(3), symbols_of("cab"));
}

TEST(ConcatTest, ConcatAllEmptyListIsEmptyWord) {
  EXPECT_TRUE(concat_all({}).empty());
}

// ----------------------------------------------------- is_concatenation

TEST(IsConcatenationTest, AcceptsCanonicalMerge) {
  auto a = fin("ace", {0, 2, 7});
  auto b = fin("bdf", {1, 2, 9});
  auto m = concat(a, b);
  EXPECT_EQ(is_concatenation(m, a, b, 100), Certificate::Proven);
}

TEST(IsConcatenationTest, RejectsWrongOrder) {
  auto a = fin("x", {4});
  auto b = fin("y", {4});
  auto wrong = fin("yx", {4, 4});  // violates item 3
  EXPECT_EQ(is_concatenation(wrong, a, b, 100), Certificate::Refuted);
}

TEST(IsConcatenationTest, RejectsMissingSymbols) {
  auto a = fin("ab", {1, 2});
  auto b = fin("c", {3});
  auto missing = fin("ab", {1, 2});
  EXPECT_EQ(is_concatenation(missing, a, b, 100), Certificate::Refuted);
}

TEST(IsConcatenationTest, InfiniteOperandsHorizonVerdict) {
  auto a = TimedWord::lasso({}, {{Symbol::chr('a'), 2}}, 2);
  auto b = TimedWord::lasso({}, {{Symbol::chr('b'), 3}}, 3);
  auto m = concat(a, b);
  EXPECT_EQ(is_concatenation(m, a, b, 256), Certificate::HoldsToHorizon);
}

// ------------------------------------------------------------- power

TEST(PowerWordTest, PowerOfOneIsSelf) {
  auto w = fin("ab", {1, 2});
  auto p = power_word(w, 1);
  EXPECT_EQ(p.symbols(2), w.symbols(2));
}

TEST(PowerWordTest, PowerMergesCopies) {
  auto w = fin("a", {5});
  auto p = power_word(w, 3);
  EXPECT_EQ(*p.length(), 3u);
  EXPECT_EQ(p.times(3), (std::vector<Tick>{5, 5, 5}));
}

TEST(PowerWordTest, ZeroPowerThrows) {
  EXPECT_THROW(power_word(fin("a", {0}), 0), ModelError);
}

// ------------------------------------------------------ TimedLanguage

TimedLanguage all_at_zero() {
  return TimedLanguage(
      "zeros",
      [](const TimedWord& w) {
        const auto n = w.length();
        if (!n) return false;
        for (std::uint64_t i = 0; i < *n; ++i)
          if (w.at(i).time != 0) return false;
        return true;
      },
      [](std::uint64_t i) {
        return TimedWord::text_at(std::string(i + 1, 'a'), 0);
      });
}

TimedLanguage singletons() {
  return TimedLanguage(
      "singleton",
      [](const TimedWord& w) { return w.length() == std::uint64_t{1}; },
      [](std::uint64_t i) {
        return TimedWord::finite({{Symbol::chr('s'), i}});
      });
}

TEST(LanguageTest, MembershipAndName) {
  auto l = all_at_zero();
  EXPECT_EQ(l.name(), "zeros");
  EXPECT_TRUE(l.contains(TimedWord::text_at("abc", 0)));
  EXPECT_FALSE(l.contains(TimedWord::text_at("abc", 1)));
}

TEST(LanguageTest, UnionIsPointwiseOr) {
  auto u = all_at_zero() | singletons();
  EXPECT_TRUE(u.contains(TimedWord::text_at("aa", 0)));
  EXPECT_TRUE(u.contains(TimedWord::finite({{Symbol::chr('x'), 9}})));
  EXPECT_FALSE(u.contains(TimedWord::finite(
      {{Symbol::chr('x'), 9}, {Symbol::chr('y'), 9}})));
}

TEST(LanguageTest, IntersectionIsPointwiseAnd) {
  auto i = all_at_zero() & singletons();
  EXPECT_TRUE(i.contains(TimedWord::text_at("a", 0)));
  EXPECT_FALSE(i.contains(TimedWord::text_at("aa", 0)));
  EXPECT_FALSE(i.contains(TimedWord::finite({{Symbol::chr('a'), 3}})));
}

TEST(LanguageTest, ComplementFlips) {
  auto c = ~all_at_zero();
  EXPECT_FALSE(c.contains(TimedWord::text_at("a", 0)));
  EXPECT_TRUE(c.contains(TimedWord::text_at("a", 1)));
}

TEST(LanguageTest, UnionSamplerAlternates) {
  auto u = all_at_zero() | singletons();
  ASSERT_TRUE(u.has_sampler());
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_TRUE(u.contains(u.sample(i))) << "sample " << i;
}

TEST(LanguageTest, SamplesSelfConsistent) {
  // all_at_zero samples are finite -> never well-behaved; so the check must
  // fail on well-behavedness, demonstrating its strictness.
  EXPECT_FALSE(samples_self_consistent(all_at_zero(), 4, 64));
  // A language of well-behaved lassos passes.
  TimedLanguage wb(
      "ticks",
      [](const TimedWord& w) { return w.infinite(); },
      [](std::uint64_t i) {
        return TimedWord::lasso({}, {{Symbol::nat(i), 1}}, 1);
      });
  EXPECT_TRUE(samples_self_consistent(wb, 8, 64));
}

TEST(LanguageTest, ConcatSamplerMerges) {
  auto c = concat(all_at_zero(), singletons());
  ASSERT_TRUE(c.has_sampler());
  auto w = c.sample(2);  // "aaa"@0 merged with s@2
  EXPECT_EQ(*w.length(), 4u);
  EXPECT_EQ(w.at(3).sym, Symbol::chr('s'));
}

TEST(LanguageTest, KleeneSamplerGrows) {
  auto k = singletons().kleene(3);
  ASSERT_TRUE(k.has_sampler());
  // sample(i) merges 1 + i%3 members.
  EXPECT_EQ(*k.sample(0).length(), 1u);
  EXPECT_EQ(*k.sample(1).length(), 2u);
  EXPECT_EQ(*k.sample(2).length(), 3u);
  EXPECT_EQ(*k.sample(3).length(), 1u);
}

TEST(LanguageTest, KleeneRequiresSampler) {
  TimedLanguage nosampler("x", [](const TimedWord&) { return true; });
  EXPECT_THROW(nosampler.kleene(), ModelError);
  EXPECT_THROW(concat(nosampler, nosampler), ModelError);
}

// Theorem 3.3 property sweep: union/intersection/complement of languages of
// well-behaved words yield languages of well-behaved words (membership is
// only ever asserted on well-behaved inputs).
class ClosureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosureProperty, OperationsPreserveWellBehavedMembers) {
  const std::uint64_t seed = GetParam();
  TimedLanguage la(
      "mod2", [](const TimedWord& w) { return w.at(0).sym == Symbol::nat(0); },
      [](std::uint64_t) {
        return TimedWord::lasso({}, {{Symbol::nat(0), 1}}, 1);
      });
  TimedLanguage lb(
      "mod3", [](const TimedWord& w) { return w.at(0).sym == Symbol::nat(1); },
      [](std::uint64_t) {
        return TimedWord::lasso({}, {{Symbol::nat(1), 1}}, 1);
      });
  auto u = la | lb;
  for (std::uint64_t i = seed; i < seed + 4; ++i) {
    auto w = u.sample(i);
    EXPECT_TRUE(u.contains(w));
    EXPECT_EQ(w.well_behaved(), Certificate::Proven);
    // Complement never contains what the base contains.
    EXPECT_NE((~u).contains(w), u.contains(w));
    // Intersection with the base is idempotent on members.
    EXPECT_EQ((u & u).contains(w), u.contains(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureProperty,
                         ::testing::Values<std::uint64_t>(0, 3, 10, 17, 64));

}  // namespace
