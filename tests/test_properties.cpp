// Cross-module property suite: invariants that tie the layers together.
//   P1. Every application word builder produces Definition 3.5-conformant
//       merges (checked via is_concatenation over a horizon).
//   P2. Deadline header round-trips over randomized instances.
//   P3. Acceptors are deterministic (same word, same verdict, twice).
//   P4. RTA-schedulable task sets never miss under EDF (RM-feasibility is
//       a sufficient condition for the optimal policy).
//   P5. Well-behavedness is preserved by shift and by Definition 3.5
//       concatenation across random lasso words.

#include <gtest/gtest.h>

#include "rtw/core/concat.hpp"
#include "rtw/core/transform.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/bridge.hpp"
#include "rtw/rtdb/encode.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::core;

TimedWord random_lasso(rtw::sim::Xoshiro256ss& rng) {
  std::vector<TimedSymbol> prefix, cycle;
  Tick t = 0;
  const auto plen = rng.uniform(std::uint64_t{4});
  for (std::uint64_t i = 0; i < plen; ++i) {
    t += rng.uniform(std::uint64_t{3});
    prefix.push_back({Symbol::nat(rng.uniform(std::uint64_t{5})), t});
  }
  const auto clen = 1 + rng.uniform(std::uint64_t{3});
  Tick ct = t + rng.uniform(std::uint64_t{3});
  const Tick cycle_start = ct;
  for (std::uint64_t i = 0; i < clen; ++i) {
    cycle.push_back({Symbol::nat(rng.uniform(std::uint64_t{5})), ct});
    ct += rng.uniform(std::uint64_t{3});
  }
  const Tick span = cycle.back().time - cycle_start;
  const Tick period = span + 1 + rng.uniform(std::uint64_t{4});
  return TimedWord::lasso(std::move(prefix), std::move(cycle), period);
}

class MergeLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeLaws, ConcatOfRandomLassosIsConformantAndWellBehaved) {
  rtw::sim::Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const auto a = random_lasso(rng);
    const auto b = random_lasso(rng);
    ASSERT_EQ(a.well_behaved(), Certificate::Proven);
    ASSERT_EQ(b.well_behaved(), Certificate::Proven);
    const auto m = concat(a, b);
    EXPECT_EQ(m.well_behaved(), Certificate::Proven);
    EXPECT_NE(is_concatenation(m, a, b, 512), Certificate::Refuted);
    // Item 1: both operands embed as subsequences.
    EXPECT_TRUE(is_subsequence(a.prefix(16), m, 2048));
    EXPECT_TRUE(is_subsequence(b.prefix(16), m, 2048));
  }
}

TEST_P(MergeLaws, ShiftPreservesWellBehavedness) {
  rtw::sim::Xoshiro256ss rng(GetParam() + 1000);
  for (int round = 0; round < 10; ++round) {
    const auto w = random_lasso(rng);
    const auto s = shift(w, 1 + rng.uniform(std::uint64_t{50}));
    EXPECT_EQ(s.well_behaved(), Certificate::Proven);
    // Shifting preserves inter-symbol gaps.
    for (std::uint64_t i = 1; i < 32; ++i)
      EXPECT_EQ(s.at(i).time - s.at(i - 1).time,
                w.at(i).time - w.at(i - 1).time);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeLaws,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1234));

// ------------------------------------------------------- P1 on app words

TEST(AppWordLaws, DbBIsConformantMerge) {
  using namespace rtw::rtdb;
  RtdbWordSpec spec;
  spec.invariants = {{"u", Value{std::int64_t{1}}}};
  spec.images.push_back({"s", 3, [](rtw::core::Tick t) {
                           return Value{static_cast<std::int64_t>(t)};
                         }});
  spec.images.push_back({"r", 5, [](rtw::core::Tick t) {
                           return Value{static_cast<std::int64_t>(2 * t)};
                         }});
  const auto db0 = build_db0(spec);
  const auto dbs = build_dbk(spec.images[0]);
  const auto first = rtw::core::concat(db0, dbs);
  // Left-fold structure: db_B == (db0 . db_s) . db_r.
  const auto dbr = build_dbk(spec.images[1]);
  const auto dbB = build_dbB(spec);
  EXPECT_NE(is_concatenation(dbB, first, dbr, 600), Certificate::Refuted);
}

TEST(AppWordLaws, DeadlineHeaderRoundTripsOverRandomInstances) {
  using namespace rtw::deadline;
  rtw::sim::Xoshiro256ss rng(77);
  for (int round = 0; round < 25; ++round) {
    DeadlineInstance inst;
    const auto in_len = 1 + rng.uniform(std::uint64_t{6});
    for (std::uint64_t i = 0; i < in_len; ++i)
      inst.input.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));
    const auto out_len = 1 + rng.uniform(std::uint64_t{4});
    for (std::uint64_t i = 0; i < out_len; ++i)
      inst.proposed_output.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));
    const bool firm = rng.bernoulli(0.5);
    inst.usefulness = firm ? Usefulness::firm(5 + rng.uniform(std::uint64_t{20}), 10)
                           : Usefulness::none(10);
    inst.min_acceptable = firm ? rng.uniform(std::uint64_t{10}) : 0;
    const auto word = build_deadline_word(inst);
    std::vector<TimedSymbol> at_zero;
    for (const auto& ts : word.prefix(64))
      if (ts.time == 0) at_zero.push_back(ts);
    const auto header = parse_deadline_header(at_zero);
    EXPECT_EQ(header.input, inst.input) << "round " << round;
    EXPECT_EQ(header.proposed_output, inst.proposed_output);
    EXPECT_EQ(header.has_min, firm);
    if (firm) {
      EXPECT_EQ(header.min_acceptable, inst.min_acceptable);
    }
  }
}

// ------------------------------------------------------ P3: determinism

TEST(DeterminismLaws, AcceptorVerdictsAreStable) {
  using namespace rtw::deadline;
  SortProblem sorter;
  DeadlineInstance inst;
  inst.input = {Symbol::nat(4), Symbol::nat(2), Symbol::nat(8)};
  inst.proposed_output = sorter.solve(inst.input);
  inst.usefulness = Usefulness::firm(20, 10);
  inst.min_acceptable = 1;
  const auto word = build_deadline_word(inst);
  DeadlineAcceptor acceptor(sorter);
  const auto r1 = rtw::engine::run(acceptor, word).result;
  const auto r2 = rtw::engine::run(acceptor, word).result;  // reset() must suffice
  EXPECT_EQ(r1.accepted, r2.accepted);
  EXPECT_EQ(r1.f_count, r2.f_count);
  EXPECT_EQ(r1.first_f, r2.first_f);
}

// -------------------------------------------- P4: RTA implies EDF success

class RtaEdf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaEdf, RmFeasibleSetsNeverMissUnderEdf) {
  using namespace rtw::deadline;
  rtw::sim::Xoshiro256ss rng(GetParam());
  const auto tasks = random_task_set(4, 0.8, rng);
  if (!rm_schedulable(tasks)) GTEST_SKIP() << "not RM-feasible";
  const auto edf = simulate_schedule(tasks, Policy::Edf, 1500);
  EXPECT_EQ(edf.missed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaEdf,
                         ::testing::Values<std::uint64_t>(10, 20, 30, 40, 50,
                                                          60, 70, 80));

}  // namespace
