// Tests for the input/output tapes (Definition 3.3) and the acceptance
// executor (Definition 3.4).

#include <gtest/gtest.h>

#include "rtw/core/acceptor.hpp"
#include "rtw/core/error.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::core;

// ------------------------------------------------------------ InputTape

TEST(InputTapeTest, GatesSymbolsByTimestamp) {
  // "a symbol ... is not available to the algorithm at any time t < tau_i"
  InputTape tape(TimedWord::finite(symbols_of("abc"), {0, 2, 2}));
  EXPECT_EQ(tape.take_available(0).size(), 1u);
  EXPECT_TRUE(tape.take_available(1).empty());
  const auto at2 = tape.take_available(2);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0].sym, Symbol::chr('b'));
  EXPECT_EQ(at2[1].sym, Symbol::chr('c'));
  EXPECT_TRUE(tape.exhausted());
}

TEST(InputTapeTest, DeliversEachSymbolOnce) {
  InputTape tape(TimedWord::finite(symbols_of("xy"), {1, 1}));
  EXPECT_EQ(tape.take_available(5).size(), 2u);
  EXPECT_TRUE(tape.take_available(5).empty());
  EXPECT_EQ(tape.consumed(), 2u);
}

TEST(InputTapeTest, NextArrivalReportsUpcomingTime) {
  InputTape tape(TimedWord::finite(symbols_of("ab"), {3, 8}));
  EXPECT_EQ(tape.next_arrival(), Tick{3});
  tape.take_available(3);
  EXPECT_EQ(tape.next_arrival(), Tick{8});
  tape.take_available(8);
  EXPECT_EQ(tape.next_arrival(), std::nullopt);
}

TEST(InputTapeTest, InfiniteWordNeverExhausts) {
  InputTape tape(TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1));
  tape.take_available(100);
  EXPECT_FALSE(tape.exhausted());
  EXPECT_EQ(tape.consumed(), 100u);
  EXPECT_EQ(tape.next_arrival(), Tick{101});
}

// ----------------------------------------------------------- OutputTape

TEST(OutputTapeTest, AtMostOneSymbolPerTick) {
  OutputTape out;
  out.write(3, Symbol::chr('x'));
  EXPECT_THROW(out.write(3, Symbol::chr('y')), ModelError);
  EXPECT_THROW(out.write(2, Symbol::chr('y')), ModelError);
  out.write(4, Symbol::chr('y'));
  EXPECT_EQ(out.size(), 2u);
}

TEST(OutputTapeTest, CanWritePredicate) {
  OutputTape out;
  EXPECT_TRUE(out.can_write(0));
  out.write(0, Symbol::chr('a'));
  EXPECT_FALSE(out.can_write(0));
  EXPECT_TRUE(out.can_write(1));
}

TEST(OutputTapeTest, TracksAcceptSymbol) {
  OutputTape out;  // default accept symbol <f>
  out.write(1, Symbol::chr('x'));
  EXPECT_EQ(out.accept_count(), 0u);
  out.write(5, marks::accept());
  out.write(9, marks::accept());
  EXPECT_EQ(out.accept_count(), 2u);
  EXPECT_EQ(out.first_accept(), Tick{5});
  EXPECT_EQ(out.last_accept(), Tick{9});
}

TEST(OutputTapeTest, CustomAcceptSymbol) {
  OutputTape out(Symbol::marker("done"));
  out.write(0, marks::accept());
  EXPECT_EQ(out.accept_count(), 0u);
  out.write(1, Symbol::marker("done"));
  EXPECT_EQ(out.accept_count(), 1u);
}

// ------------------------------------------------------ acceptor runs

/// Accepts iff the total count of 'a' symbols seen within the first
/// `window` ticks is at least `threshold`; locks at tick `window`.
class CountingAcceptor final : public RealTimeAlgorithm {
public:
  CountingAcceptor(Tick window, std::uint64_t threshold)
      : window_(window), threshold_(threshold) {}

  void on_tick(const StepContext& ctx) override {
    // Count only arrivals whose timestamps fall inside the window: the
    // executor may fast-forward past the window boundary, so the decision
    // must be timestamp-based, not visit-based.
    for (const auto& ts : ctx.arrivals)
      if (ts.sym == Symbol::chr('a') && ts.time <= window_) ++count_;
    if (ctx.now >= window_ && !decided_) {
      decided_ = true;
      verdict_ = count_ >= threshold_;
    }
    if (decided_ && verdict_ && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
  }

  std::optional<bool> locked() const override {
    if (!decided_) return std::nullopt;
    return verdict_;
  }

  void reset() override {
    count_ = 0;
    decided_ = false;
    verdict_ = false;
  }

private:
  Tick window_;
  std::uint64_t threshold_;
  std::uint64_t count_ = 0;
  bool decided_ = false;
  bool verdict_ = false;
};

TEST(RunAcceptorTest, AcceptAllAcceptsExactly) {
  AcceptAll algo;
  const auto r = rtw::engine::run(algo, TimedWord::text_at("abc", 0)).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_GE(r.f_count, 1u);
}

TEST(RunAcceptorTest, RejectAllRejectsExactly) {
  RejectAll algo;
  const auto r = rtw::engine::run(algo, TimedWord::text_at("abc", 0)).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.f_count, 0u);
}

TEST(RunAcceptorTest, CountingAcceptorSeesGatedInput) {
  CountingAcceptor algo(10, 3);
  // Three a's arrive by tick 10 -> accept.
  auto yes = TimedWord::finite(symbols_of("aaa"), {1, 5, 9});
  auto r = rtw::engine::run(algo, yes).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.symbols_consumed, 3u);
  // Third a arrives after the window -> reject.
  auto no = TimedWord::finite(symbols_of("aaa"), {1, 5, 11});
  r = rtw::engine::run(algo, no).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
}

TEST(RunAcceptorTest, ResetBetweenRuns) {
  CountingAcceptor algo(4, 2);
  auto w = TimedWord::finite(symbols_of("aa"), {0, 1});
  EXPECT_TRUE(rtw::engine::run(algo, w).result.accepted);
  // Same algorithm object, fresh run: must not carry the old count.
  auto single = TimedWord::finite(symbols_of("a"), {0});
  EXPECT_FALSE(rtw::engine::run(algo, single).result.accepted);
}

TEST(RunAcceptorTest, FastForwardSkipsIdleGaps) {
  CountingAcceptor algo(1000000, 1);
  auto w = TimedWord::finite(symbols_of("a"), {999999});
  RunOptions opt;
  opt.horizon = 2000000;
  const auto r = rtw::engine::run(algo, w, opt).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
}

TEST(RunAcceptorTest, UnlockedAlgorithmGetsHorizonVerdict) {
  /// Writes f every tick but never locks.
  class Waffler final : public RealTimeAlgorithm {
  public:
    void on_tick(const StepContext& ctx) override {
      if (ctx.out.can_write(ctx.now))
        ctx.out.write(ctx.now, ctx.out.accept_symbol());
    }
  } algo;
  RunOptions opt;
  opt.horizon = 200;
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1);
  const auto r = rtw::engine::run(algo, w, opt).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.exact);  // heuristic verdict
}

TEST(RunAcceptorTest, SilentUnlockedAlgorithmRejectsAtHorizon) {
  class Silent final : public RealTimeAlgorithm {
  public:
    void on_tick(const StepContext&) override {}
  } algo;
  RunOptions opt;
  opt.horizon = 100;
  const auto r =
      rtw::engine::run(algo, TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1), opt).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.exact);
}

// Lock-protocol edge cases through rtw::engine::run; these pin the
// boundary behaviour of the historical loop.

TEST(RunAcceptorLockEdgeTest, LockOnTickZeroStopsImmediately) {
  AcceptAll algo;
  const auto r = rtw::engine::run(algo, TimedWord::finite(symbols_of("abc"),
                                                      {50, 60, 70})).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  // Locked on the very first tick: no arrival was ever needed or consumed.
  EXPECT_EQ(r.ticks, 0u);
  EXPECT_EQ(r.symbols_consumed, 0u);
}

TEST(RunAcceptorLockEdgeTest, LockAfterLastArrival) {
  // Decision window closes at tick 30; the word drains at tick 9.  The
  // executor must keep stepping past the drained word until the lock.
  CountingAcceptor algo(30, 2);
  const auto r =
      rtw::engine::run(algo, TimedWord::finite(symbols_of("aa"), {3, 9})).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.ticks, 30u);
  EXPECT_EQ(r.symbols_consumed, 2u);
}

TEST(RunAcceptorLockEdgeTest, NeverLocksIsNeverExact) {
  // Any unlocked run -- accepting or rejecting -- must carry exact ==
  // false, whatever the horizon.
  class Silent final : public RealTimeAlgorithm {
  public:
    void on_tick(const StepContext&) override {}
  } algo;
  for (Tick horizon : {Tick{1}, Tick{10}, Tick{1000}}) {
    RunOptions opt;
    opt.horizon = horizon;
    const auto r = rtw::engine::run(
        algo, TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1), opt).result;
    EXPECT_FALSE(r.exact) << "horizon=" << horizon;
    EXPECT_FALSE(r.accepted) << "horizon=" << horizon;
  }
}

// Property: acceptance of CountingAcceptor matches the arithmetic truth for
// a sweep of (window, arrivals) shapes.
struct GateCase {
  Tick window;
  Tick arrival_step;
  std::uint64_t count;
  std::uint64_t threshold;
};

class GateProperty : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateProperty, VerdictMatchesArithmetic) {
  const auto& p = GetParam();
  std::vector<TimedSymbol> symbols;
  for (std::uint64_t i = 0; i < p.count; ++i)
    symbols.push_back({Symbol::chr('a'), p.arrival_step * (i + 1)});
  CountingAcceptor algo(p.window, p.threshold);
  RunOptions opt;
  opt.horizon = p.window + p.arrival_step * (p.count + 2) + 10;
  const auto r = rtw::engine::run(algo, TimedWord::finite(symbols), opt).result;
  std::uint64_t available = 0;
  for (std::uint64_t i = 0; i < p.count; ++i)
    if (p.arrival_step * (i + 1) <= p.window) ++available;
  EXPECT_EQ(r.accepted, available >= p.threshold)
      << "window=" << p.window << " step=" << p.arrival_step
      << " count=" << p.count << " threshold=" << p.threshold;
  EXPECT_TRUE(r.exact);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GateProperty,
    ::testing::Values(GateCase{10, 1, 5, 5}, GateCase{10, 3, 5, 4},
                      GateCase{10, 3, 5, 3}, GateCase{100, 7, 20, 14},
                      GateCase{100, 7, 20, 15}, GateCase{1, 1, 1, 1},
                      GateCase{1, 2, 1, 1}, GateCase{50, 5, 10, 10},
                      GateCase{49, 5, 10, 10}, GateCase{1000, 100, 3, 11}));

}  // namespace
