// Tests for the extension layer: Buchi emptiness/witness extraction,
// relational aggregates, temporal as-of queries, the gossip protocol, and
// the PRAM max-reduction.

#include <gtest/gtest.h>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/automata/dot.hpp"
#include "rtw/automata/operations.hpp"
#include "rtw/core/error.hpp"
#include "rtw/par/pram.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/temporal.hpp"

namespace {

using rtw::core::Symbol;

// ------------------------------------------------ Buchi emptiness/witness

using namespace rtw::automata;

TEST(BuchiWitnessTest, FindsSelfLoopWitness) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_transition(1, 1, Symbol::chr('b'));
  fa.add_final(1);
  BuchiAutomaton buchi(std::move(fa));
  EXPECT_FALSE(buchi_empty(buchi));
  const auto witness = buchi_witness(buchi);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(buchi.accepts(*witness));
}

TEST(BuchiWitnessTest, FindsMultiStepCycle) {
  // Cycle 1 -> 2 -> 1 through the final state 1.
  FiniteAutomaton fa(3, 0);
  fa.add_transition(0, 1, Symbol::chr('x'));
  fa.add_transition(1, 2, Symbol::chr('y'));
  fa.add_transition(2, 1, Symbol::chr('z'));
  fa.add_final(1);
  BuchiAutomaton buchi(std::move(fa));
  const auto witness = buchi_witness(buchi);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(buchi.accepts(*witness));
  EXPECT_GE(witness->cycle.size(), 2u);
}

TEST(BuchiWitnessTest, EmptyWhenFinalUnreachable) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, Symbol::chr('a'));
  fa.add_final(1);  // unreachable
  EXPECT_TRUE(buchi_empty(BuchiAutomaton(std::move(fa))));
}

TEST(BuchiWitnessTest, EmptyWhenFinalNotOnCycle) {
  // Final state reachable but a dead end: inf(r) cannot contain it.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_final(1);
  EXPECT_TRUE(buchi_empty(BuchiAutomaton(std::move(fa))));
}

TEST(BuchiWitnessTest, IntersectionEmptinessDetectsDisjointness) {
  // "infinitely many a's" ∩ "only b's" = empty.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, Symbol::chr('b'));
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_transition(1, 0, Symbol::chr('b'));
  fa.add_transition(1, 1, Symbol::chr('a'));
  fa.add_final(1);
  BuchiAutomaton inf_a(std::move(fa));
  FiniteAutomaton fb(1, 0);
  fb.add_transition(0, 0, Symbol::chr('b'));
  fb.add_final(0);
  BuchiAutomaton only_b(std::move(fb));
  EXPECT_FALSE(buchi_empty(inf_a));
  EXPECT_FALSE(buchi_empty(only_b));
  EXPECT_TRUE(buchi_empty(buchi_intersection(inf_a, only_b)));
  const auto joint = buchi_witness(buchi_union(inf_a, only_b));
  ASSERT_TRUE(joint.has_value());
}

// --------------------------------------------------------------- aggregates

using namespace rtw::rtdb;

Relation sales() {
  Relation r("Sales", {"City", "Amount"});
  r.insert({Value{std::string("Kingston")}, Value{std::int64_t{10}}});
  r.insert({Value{std::string("Toronto")}, Value{std::int64_t{25}}});
  r.insert({Value{std::string("Kingston")}, Value{std::int64_t{5}}});
  r.insert({Value{std::string("Ottawa")}, Value{std::int64_t{40}}});
  return r;
}

TEST(AggregateTest, GroupCount) {
  const auto counts = group_count(sales(), "City");
  EXPECT_EQ(counts.sort(), (std::vector<Attribute>{"City", "count"}));
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts.tuples()[0],
            (Tuple{Value{std::string("Kingston")}, Value{std::int64_t{2}}}));
  EXPECT_THROW(group_count(sales(), "Nope"), rtw::core::ModelError);
}

TEST(AggregateTest, GroupSum) {
  const auto sums = group_sum(sales(), "City", "Amount");
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_EQ(sums.tuples()[0],
            (Tuple{Value{std::string("Kingston")}, Value{std::int64_t{15}}}));
  EXPECT_EQ(sums.tuples()[2],
            (Tuple{Value{std::string("Ottawa")}, Value{std::int64_t{40}}}));
}

TEST(AggregateTest, GroupSumRejectsNonIntegers) {
  Relation r("R", {"K", "V"});
  r.insert({Value{std::int64_t{1}}, Value{std::string("oops")}});
  EXPECT_THROW(group_sum(r, "K", "V"), rtw::core::ModelError);
}

TEST(AggregateTest, MaxOf) {
  EXPECT_EQ(max_of(sales(), "Amount"), 40);
  Relation empty("E", {"V"});
  EXPECT_EQ(max_of(empty, "V"), std::nullopt);
}

// ---------------------------------------------------------------- as_of

TEST(AsOfTest, EvaluatesAgainstHistoricalState) {
  SnapshotStore store;
  Database v1;
  v1.put(sales());
  store.record(10, v1);
  Database v2 = v1;
  v2.get("Sales").erase_if([](const Tuple&) { return true; });
  store.record(20, v2);

  auto count_rows = [](const Database& db) {
    return group_count(db.get("Sales"), "City");
  };
  EXPECT_EQ(as_of(store, 5, count_rows), std::nullopt);
  EXPECT_EQ(as_of(store, 15, count_rows)->size(), 3u);
  EXPECT_EQ(as_of(store, 25, count_rows)->size(), 0u);

  const auto history = query_history(store, count_rows);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].first, 10u);
  EXPECT_EQ(history[0].second.size(), 3u);
  EXPECT_EQ(history[1].second.size(), 0u);
}

// ---------------------------------------------------------------- gossip

using namespace rtw::adhoc;

Network diamond() {
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(std::make_unique<Stationary>(Vec2{0, 0}));
  nodes.push_back(std::make_unique<Stationary>(Vec2{10, 5}));
  nodes.push_back(std::make_unique<Stationary>(Vec2{10, -5}));
  nodes.push_back(std::make_unique<Stationary>(Vec2{20, 0}));
  return Network(std::move(nodes), 12.0);
}

TEST(GossipTest, ProbabilityOneBehavesLikeFlooding) {
  const auto net = diamond();
  Simulator g(net, gossip_factory(1.0, 7));
  g.schedule({1, 0, 3, 0});
  Simulator f(net, flooding_factory());
  f.schedule({1, 0, 3, 0});
  const auto rg = g.run(30);
  const auto rf = f.run(30);
  EXPECT_EQ(rg.data_transmissions, rf.data_transmissions);
  EXPECT_TRUE(rg.delivery_of(1).has_value());
}

TEST(GossipTest, ProbabilityZeroNeverRelays) {
  const auto net = diamond();
  Simulator sim(net, gossip_factory(0.0, 7));
  sim.schedule({1, 0, 3, 0});
  const auto r = sim.run(30);
  EXPECT_EQ(r.data_transmissions, 1u);  // origin only
  EXPECT_FALSE(r.delivery_of(1).has_value());
}

TEST(GossipTest, IntermediateProbabilityTradesOff) {
  // Over many messages, p=0.5 delivers less than flooding but transmits
  // less too.
  NetworkConfig config;
  config.nodes = 16;
  config.region = {120, 120};
  config.radio_range = 40;
  config.pause_time = 50;
  config.seed = 31;
  Network net(config);
  auto run_with = [&](const ProtocolFactory& factory) {
    Simulator sim(net, factory);
    std::vector<DataSpec> messages;
    for (std::uint64_t m = 0; m < 20; ++m) {
      DataSpec s{m + 1, static_cast<NodeId>(m % 16),
                 static_cast<NodeId>((m * 7 + 3) % 16), 10 + m * 10};
      if (s.dst == s.src) s.dst = (s.dst + 1) % 16;
      sim.schedule(s);
      messages.push_back(s);
    }
    return compute_metrics(sim.run(300), net, messages);
  };
  const auto flood = run_with(flooding_factory());
  const auto gossip = run_with(gossip_factory(0.5, 7));
  EXPECT_LT(gossip.data_transmissions, flood.data_transmissions);
  EXPECT_LE(gossip.delivery_ratio(), flood.delivery_ratio());
  EXPECT_GT(gossip.delivery_ratio(), 0.2);  // still propagates
}

TEST(GossipTest, DeterministicAcrossRuns) {
  const auto net = diamond();
  auto run_once = [&] {
    Simulator sim(net, gossip_factory(0.5, 99));
    sim.schedule({1, 0, 3, 0});
    return sim.run(30).data_transmissions;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------------------- PRAM max

using namespace rtw::par;

TEST(PramMaxTest, ReducesToMaximum) {
  Pram pram(8, 8, PramVariant::Erew);
  pram.memory() = {3, 9, 1, 7, 4, 8, 2, 6};
  const auto steps = pram_max_reduce(pram, 8);
  EXPECT_EQ(steps, 3u);  // log2(8)
  EXPECT_EQ(pram.memory()[0], 9);
}

TEST(PramMaxTest, ErewSafeByConstruction) {
  // Running under EREW must not throw: reads/writes are disjoint.
  Pram pram(16, 16, PramVariant::Erew);
  for (std::size_t i = 0; i < 16; ++i)
    pram.memory()[i] = static_cast<Word>((i * 37) % 23);
  EXPECT_NO_THROW(pram_max_reduce(pram, 16));
  EXPECT_EQ(pram.memory()[0], 21);  // max of (i*37)%23 over i<16
}

TEST(PramMaxTest, NonPowerOfTwoSize) {
  Pram pram(8, 8, PramVariant::Erew);
  pram.memory() = {1, 2, 3, 4, 5, 0, 0, 0};
  pram_max_reduce(pram, 5);
  EXPECT_EQ(pram.memory()[0], 5);
}

}  // namespace

// -------------------------------------------------- dot / language bridge

namespace bridge {

using namespace rtw::automata;
using rtw::core::Symbol;

TEST(DotTest, FiniteAutomatonRendering) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_lambda(1, 0);
  fa.add_final(1);
  const auto dot = to_dot(fa, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotTest, TbaRenderingShowsGuardsAndResets) {
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::le(0, 4)});
  tba.add_final(1);
  const auto dot = to_dot(tba);
  EXPECT_NE(dot.find("x0<=4"), std::string::npos);
  EXPECT_NE(dot.find("reset{x0}"), std::string::npos);
}

TEST(TbaLanguageTest, MembershipAndSampling) {
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  const auto lang = tba_language(std::move(tba), "within-two");
  EXPECT_EQ(lang.name(), "within-two");
  const auto good = rtw::core::TimedWord::lasso(
      {}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 1}}, 3);
  const auto bad = rtw::core::TimedWord::lasso(
      {}, {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 5}}, 8);
  EXPECT_TRUE(lang.contains(good));
  EXPECT_FALSE(lang.contains(bad));
  // The sampler's word is a member -- ties into samples_self_consistent.
  EXPECT_TRUE(rtw::core::samples_self_consistent(lang, 3, 128));
}

TEST(TbaLanguageTest, EmptyLanguageSamplerThrows) {
  TimedBuchiAutomaton tba(1, 0, 1);
  tba.add_transition({0, 0, Symbol::chr('a'), {}, ClockConstraint::le(0, 0)});
  tba.add_final(0);
  const auto lang = tba_language(std::move(tba));
  EXPECT_THROW(lang.sample(0), rtw::core::ModelError);
}

}  // namespace bridge

// --------------------------------------------- Muller conversion / radio

namespace more {

using namespace rtw::automata;
using namespace rtw::adhoc;
using rtw::core::Symbol;

TEST(BuchiToMullerTest, EquivalentOnSamples) {
  // Deterministic "infinitely many a's" over {a, b}.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_transition(0, 0, Symbol::chr('b'));
  fa.add_transition(1, 1, Symbol::chr('a'));
  fa.add_transition(1, 0, Symbol::chr('b'));
  fa.add_final(1);
  BuchiAutomaton buchi(std::move(fa));
  const auto muller = buchi_to_muller(buchi);
  for (const char* cycle : {"a", "b", "ab", "ba", "aab", "abb"}) {
    const auto w = omega_word("ba", cycle);
    EXPECT_EQ(buchi.accepts(w), muller.accepts(w)) << cycle;
  }
}

TEST(BuchiToMullerTest, RejectsNondeterministic) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, Symbol::chr('a'));
  fa.add_transition(0, 1, Symbol::chr('a'));
  fa.add_final(1);
  EXPECT_THROW(buchi_to_muller(BuchiAutomaton(std::move(fa))),
               rtw::core::ModelError);
}

std::unique_ptr<Mobility> fixed(double x, double y) {
  return std::make_unique<Stationary>(Vec2{x, y});
}

TEST(RadioModelTest, CollisionsDestroySimultaneousArrivals) {
  // Diamond: node 3 hears nodes 1 and 2 rebroadcast in the same tick.
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(fixed(0, 0));
  nodes.push_back(fixed(10, 5));
  nodes.push_back(fixed(10, -5));
  nodes.push_back(fixed(20, 0));
  Network net(std::move(nodes), 12.0);

  Simulator clean(net, flooding_factory());
  clean.schedule({1, 0, 3, 0});
  const auto ok = clean.run(20);
  EXPECT_TRUE(ok.delivery_of(1).has_value());
  EXPECT_EQ(ok.collided, 0u);

  Simulator noisy(net, flooding_factory(), RadioModel{true});
  noisy.schedule({1, 0, 3, 0});
  const auto lost = noisy.run(20);
  // Nodes 1 and 2 both receive the origin broadcast (single arrival each),
  // rebroadcast at the same tick, and collide at node 3.
  EXPECT_FALSE(lost.delivery_of(1).has_value());
  EXPECT_GT(lost.collided, 0u);
}

TEST(RadioModelTest, UnicastChainsSurviveInterference) {
  // A line has no simultaneous arrivals: DSDV delivers despite the ALOHA
  // radio (its staggered periodic updates avoid systematic collisions).
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(fixed(10.0 * i, 0));
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, dsdv_factory(10), RadioModel{true});
  // t = 53 avoids node 0's own beacon phase (ticks = 0 mod 10): sending
  // data in the same tick as a beacon would collide at node 1.
  sim.schedule({1, 0, 3, 53});
  const auto result = sim.run(120);
  EXPECT_TRUE(result.delivery_of(1).has_value());
}

}  // namespace more
