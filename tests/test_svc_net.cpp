// Hermetic loopback tests for the epoll TCP front-end.
//
//   1. Single-client round trip: Hello negotiation, count-profile
//      sessions, Verdict notifications.
//   2. Adversarial byte boundaries: the whole stream delivered in 1-byte
//      and prime-sized chunks with write pacing, so server-side read()
//      calls observe frames split at every offset.
//   3. Multi-client parity: N concurrent clients stream deterministic
//      words; every wire verdict must be bit-identical (verdict, exact,
//      fed, stale) to an in-process SessionManager replay of the same
//      word set.
//   4. Slow reader / partial writes: tiny socket buffers and a tiny
//      write_buffer_limit force the flush path through EAGAIN and the
//      read-pause hysteresis; every verdict must still arrive.
//   5. Graceful drain: stop() truncate-closes abandoned sessions and
//      flushes their verdicts before the socket closes.
//
// Everything binds port 0 on 127.0.0.1: no fixed ports, no external
// daemon, safe for parallel ctest.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rtw/svc/net/tcp_server.hpp"
#include "rtw/svc/profiles.hpp"
#include "rtw/svc/server.hpp"
#include "rtw/svc/service.hpp"
#include "rtw/svc/wire.hpp"

namespace {

using namespace rtw::svc;
using rtw::core::StreamEnd;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedSymbol;
using rtw::core::Verdict;

/// Blocking loopback client with an incremental Decoder on the read side.
class TestClient {
public:
  ~TestClient() { close(); }

  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connect (the kernel clamps to
  /// its minimum), so the server's writes hit EAGAIN after a few KB.
  bool connect_to(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    if (rcvbuf > 0)
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  /// Writes `bytes` in `chunk`-sized pieces, sleeping `pace_us` between
  /// them -- small chunks + pacing force the server's read() calls to see
  /// frames split at arbitrary byte boundaries.
  bool send_all(std::string_view bytes, std::size_t chunk = SIZE_MAX,
                unsigned pace_us = 0) {
    for (std::size_t off = 0; off < bytes.size();) {
      const std::size_t n = std::min(chunk, bytes.size() - off);
      const ssize_t wrote = ::write(fd_, bytes.data() + off, n);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(wrote);
      if (pace_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
    }
    return true;
  }

  /// Pops the next decoded event, reading from the socket (with a poll
  /// timeout) until one is available.  False on timeout/EOF/decode error.
  bool next_event(WireEvent& out, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (decoder_.next(out)) return true;
      if (!decoder_.ok()) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      const int ready = ::poll(&pfd, 1, std::max(1, remaining));
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;
      char buffer[4096];
      const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return decoder_.next(out);  // EOF: only buffered events
      decoder_.push(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
  }

  /// Reads until EOF, decoding everything that still arrives.
  std::vector<WireEvent> drain_until_eof(int timeout_ms = 10000) {
    std::vector<WireEvent> events;
    WireEvent ev;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      while (decoder_.next(ev)) events.push_back(ev);
      if (std::chrono::steady_clock::now() >= deadline) break;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      char buffer[4096];
      const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      decoder_.push(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
    while (decoder_.next(ev)) events.push_back(ev);
    return events;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  const Decoder& decoder() const { return decoder_; }

private:
  int fd_ = -1;
  Decoder decoder_;
};

std::vector<TimedSymbol> word_of(std::size_t n) {
  std::vector<TimedSymbol> word;
  word.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    word.push_back({Symbol::nat(i % 5), static_cast<Tick>(i + 1)});
  return word;
}

/// A server on 127.0.0.1:0 with the profile factory; tears down in order.
struct Harness {
  explicit Harness(ServerConfig config = make_default_config())
      : server(std::move(config), profile_factory()), transport(server) {}

  static ServerConfig make_default_config() {
    ServerConfig config;
    config.net.port = 0;
    config.shard.count = 2;
    return config;
  }

  bool start() { return transport.start(); }

  Server server;
  net::TcpServer transport;
};

TEST(NetLoopback, SingleClientHelloAndVerdictRoundTrip) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port()));
  std::string stream = encode_hello();
  stream += encode_open(1, "count:3");
  stream += encode_feed_batch(1, word_of(3));
  stream += encode_close(1);
  ASSERT_TRUE(client.send_all(stream));

  WireEvent ev;
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
  EXPECT_EQ(ev.version, kWireVersion);
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Verdict);
  EXPECT_EQ(ev.session, 1u);
  EXPECT_EQ(ev.verdict, Verdict::Accepting);
  EXPECT_FALSE(ev.exact);
  EXPECT_FALSE(ev.evicted);
  EXPECT_EQ(ev.fed, 3u);
  EXPECT_EQ(ev.stale, 0u);
}

TEST(NetLoopback, UnknownProfileDrawsAShedNotice) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port()));
  std::string stream = encode_hello();
  stream += encode_open(4, "no-such-profile");
  ASSERT_TRUE(client.send_all(stream));

  WireEvent ev;
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Shed);
  EXPECT_EQ(ev.session, 4u);
  EXPECT_EQ(ev.admit.admit, Admit::Shed);
}

TEST(NetLoopback, AdversarialByteSplitsDecodeIdentically) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  std::string stream = encode_hello();
  stream += encode_open(1, "count:5");
  // Feed (op 2, textual body) exercises the parse_prefix hold-back;
  // FeedBatch (op 5) the one-event path.  Split both.
  const auto word = word_of(5);
  stream += encode_feed(
      1, std::vector<TimedSymbol>(word.begin(), word.begin() + 2));
  stream += encode_feed_batch(
      1, std::vector<TimedSymbol>(word.begin() + 2, word.end()));
  stream += encode_close(1);

  // chunk=1 with pacing: every server read() sees a handful of bytes at
  // most, so headers, session ids and element text all split mid-field.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}}) {
    TestClient client;
    ASSERT_TRUE(client.connect_to(h.transport.port()));
    ASSERT_TRUE(client.send_all(stream, chunk, /*pace_us=*/chunk == 1 ? 50
                                                                      : 0));
    WireEvent ev;
    ASSERT_TRUE(client.next_event(ev)) << "chunk=" << chunk;
    EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
    ASSERT_TRUE(client.next_event(ev)) << "chunk=" << chunk;
    EXPECT_EQ(ev.kind, WireEvent::Kind::Verdict);
    EXPECT_EQ(ev.verdict, Verdict::Accepting) << "chunk=" << chunk;
    EXPECT_EQ(ev.fed, 5u);
  }
}

/// N concurrent clients, deterministic count-profile words, and a replay
/// of the same words through an in-process SessionManager: the wire
/// verdicts must match the in-process reports field for field.
TEST(NetLoopback, ManyClientsMatchInProcessVerdictsBitForBit) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  constexpr std::size_t kClients = 24;
  constexpr std::size_t kSessions = 3;

  struct WireVerdict {
    bool arrived = false;
    Verdict verdict = Verdict::Undetermined;
    bool exact = false;
    std::uint64_t fed = 0, stale = 0;
  };
  std::vector<std::array<WireVerdict, kSessions>> wire(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};

  const auto word_len = [](std::size_t c, std::size_t s) {
    return 2 + (c + s) % 6;
  };
  // Session s on client c: target == length for even (c+s) -> Accepting;
  // target == length - 1 for odd -> the overshoot locks Rejecting exactly.
  const auto target = [&](std::size_t c, std::size_t s) {
    const auto len = word_len(c, s);
    return (c + s) % 2 == 0 ? len : len - 1;
  };

  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client;
      if (!client.connect_to(h.transport.port())) {
        ++failures;
        return;
      }
      std::string stream = encode_hello();
      for (std::size_t s = 0; s < kSessions; ++s) {
        stream += encode_open(s + 1,
                              "count:" + std::to_string(target(c, s)));
        stream += encode_feed_batch(s + 1, word_of(word_len(c, s)));
        stream += encode_close(s + 1);
      }
      if (!client.send_all(stream, /*chunk=*/13)) {
        ++failures;
        return;
      }
      std::size_t verdicts = 0;
      WireEvent ev;
      while (verdicts < kSessions && client.next_event(ev)) {
        if (ev.kind != WireEvent::Kind::Verdict) continue;
        auto& slot = wire[c][ev.session - 1];
        slot.arrived = true;
        slot.verdict = ev.verdict;
        slot.exact = ev.exact;
        slot.fed = ev.fed;
        slot.stale = ev.stale;
        ++verdicts;
      }
      if (verdicts != kSessions) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // In-process replay: same words, blocking ingress so nothing sheds.
  ShardConfig shard;
  shard.count = 2;
  IngressConfig ingress;
  ingress.shed_on_full = false;
  SessionManager manager(shard, ingress);
  const auto factory = profile_factory();
  std::map<SessionId, std::pair<std::size_t, std::size_t>> who;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      const SessionId id = c * kSessions + s + 1;
      who[id] = {c, s};
      manager.open(id, factory(id, "count:" + std::to_string(target(c, s))),
                   Priority::Normal);
      manager.feed_batch(id, word_of(word_len(c, s)));
      manager.close(id);
    }
  }
  manager.drain();
  std::size_t compared = 0;
  for (const auto& report : manager.collect()) {
    const auto [c, s] = who.at(report.id);
    const WireVerdict& w = wire[c][s];
    ASSERT_TRUE(w.arrived) << "client " << c << " session " << s;
    EXPECT_EQ(w.verdict, report.verdict) << "client " << c << " session " << s;
    EXPECT_EQ(w.exact, report.result.exact);
    EXPECT_EQ(w.fed, report.fed);
    EXPECT_EQ(w.stale, report.stale_dropped);
    ++compared;
  }
  EXPECT_EQ(compared, kClients * kSessions);
}

/// Tiny socket buffers + a tiny write_buffer_limit: the server's flush
/// hits EAGAIN (partial writes) while the client sleeps, the output
/// buffer crosses the limit, reads pause, and the hysteresis resumes them
/// once the client finally drains.  All verdicts must still arrive.
TEST(NetLoopback, SlowReaderSurvivesPartialWritesAndBackpressure) {
  ServerConfig config = Harness::make_default_config();
  config.net.sndbuf = 4096;
  config.net.rcvbuf = 4096;
  config.net.write_buffer_limit = 8192;
  Harness h(config);
  ASSERT_TRUE(h.start()) << h.transport.error();

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port()));

  // Many sessions, each with a fat profile echoing back a 19-byte Verdict
  // frame: ~256 verdicts > sndbuf + write_buffer_limit, so the reactor
  // must stage partial writes while the client reads nothing.
  constexpr std::size_t kSessionCount = 256;
  std::string stream = encode_hello();
  for (std::size_t s = 1; s <= kSessionCount; ++s) {
    stream += encode_open(s, "count:2");
    stream += encode_feed_batch(s, word_of(2));
    stream += encode_close(s);
  }
  ASSERT_TRUE(client.send_all(stream));
  // Sleep without reading: verdict frames pile into the server's buffers.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::size_t verdicts = 0;
  WireEvent ev;
  while (verdicts < kSessionCount && client.next_event(ev)) {
    if (ev.kind == WireEvent::Kind::Verdict) {
      EXPECT_EQ(ev.verdict, Verdict::Accepting);
      EXPECT_EQ(ev.fed, 2u);
      ++verdicts;
    }
  }
  EXPECT_EQ(verdicts, kSessionCount);
  EXPECT_TRUE(client.decoder().ok()) << client.decoder().error();
}

/// Write-side backpressure with the stream pre-buffered: the client's
/// entire input lands in the kernel rcvbuf, the output buffer crosses
/// write_buffer_limit mid-stream, and reads pause with most of the input
/// unread.  Resuming must deliver that buffered tail without a fresh
/// EPOLLIN edge announcing it -- the unconditional re-read guarantees
/// this by construction, where gating on an edge would depend on epoll
/// happening to re-report EPOLLIN alongside the EPOLLOUT that triggers
/// the resume.
///
/// Worker-delivered verdicts would make the pause position racy, so the
/// output pressure here is ShedNotice frames: an in-process flood keeps
/// the single tiny ring full, every wire feed sheds, and each shed queues
/// its notice *synchronously* on the reactor.  The pause point is then a
/// pure function of bytes read -- always mid-stream, long after loopback
/// delivery finished.
TEST(NetLoopback, ResumeAfterBackpressureReadsBufferedTail) {
  ServerConfig config = Harness::make_default_config();
  config.shard.count = 1;
  config.ingress.ring_capacity = 8;  // shed_on_full stays true: shed storm
  config.net.sndbuf = 1;             // clamped up to the kernel minimum
  // Tiny read chunks make consuming the stream (hundreds of read() +
  // decode rounds) far slower than loopback delivery, so the whole stream
  // is buffered long before the pause can trigger.
  config.net.read_chunk = 64;
  config.net.write_buffer_limit = 512;
  Harness h(config);
  ASSERT_TRUE(h.start()) << h.transport.error();

  auto& manager = h.server.manager();
  const auto factory = profile_factory();
  constexpr SessionId kFloodSession = SessionId{1} << 20;
  manager.open(kFloodSession, factory(kFloodSession, "accept"),
               Priority::High);
  std::atomic<bool> flood{true};
  std::vector<std::thread> flooders;
  for (int i = 0; i < 3; ++i) {
    flooders.emplace_back([&] {
      const auto big = word_of(20000);
      while (flood.load(std::memory_order_relaxed))
        manager.feed_batch(kFloodSession, big);  // Shed/full = just retry
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port(), /*rcvbuf=*/1));

  // 2000 single-symbol feeds: ~38KB of shed notices against ~10KB of
  // socket capacity guarantees the pause, with most of the stream still
  // unread when it hits.  Ticks increase across feeds so admitted symbols
  // are never dropped as stale.
  constexpr std::size_t kFeeds = 2000;
  std::string stream = encode_hello();
  stream += encode_open(1, "count:" + std::to_string(kFeeds));
  for (std::size_t i = 0; i < kFeeds; ++i) {
    stream += encode_feed_batch(
        1, {{Symbol::nat(i % 5), static_cast<Tick>(i + 1)}});
  }
  stream += encode_close(1);
  ASSERT_TRUE(client.send_all(stream));
  // Sleep without reading: the server sheds feed after feed until its
  // output fills, pauses reads, and from here on only EPOLLOUT (us
  // draining) can wake the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  flood.store(false, std::memory_order_relaxed);
  for (auto& t : flooders) t.join();
  manager.close(kFloodSession);

  // Every feed either queued a ShedNotice or reached the session; the
  // close's Verdict is last, so its arrival proves the whole tail was
  // read after the resume.
  std::uint64_t sheds = 0;
  std::uint64_t fed = 0;
  bool saw_verdict = false;
  WireEvent ev;
  while (!saw_verdict && client.next_event(ev)) {
    if (ev.kind == WireEvent::Kind::Shed) {
      ++sheds;
    } else if (ev.kind == WireEvent::Kind::Verdict) {
      EXPECT_EQ(ev.session, 1u);
      fed = ev.fed;
      saw_verdict = true;
    }
  }
  ASSERT_TRUE(saw_verdict) << "verdict never arrived: tail stranded";
  EXPECT_EQ(sheds + fed, kFeeds);
  EXPECT_TRUE(client.decoder().ok()) << client.decoder().error();
  // The scenario must actually have paused reads, or it proves nothing.
  EXPECT_GE(h.transport.stats().read_pauses, 1u);
}

/// Regression: admission parking over TCP.  A tiny single-shard ring with
/// shed_on_full=false makes wire feeds hit Admit::Blocked while an
/// in-process flooder keeps the shard saturated; the reactor parks the
/// connection with most of the (tiny) client stream still unread in the
/// kernel rcvbuf.  When the flood stops and retry_pending() succeeds, the
/// resume must re-read that tail without waiting for an input edge.
TEST(NetLoopback, AdmissionParkResumesBufferedTail) {
  ServerConfig config = Harness::make_default_config();
  config.shard.count = 1;
  config.ingress.ring_capacity = 2;
  config.ingress.shed_on_full = false;  // full ring parks, never sheds
  config.net.read_chunk = 64;  // park mid-stream, tail stays in rcvbuf
  Harness h(config);
  ASSERT_TRUE(h.start()) << h.transport.error();

  auto& manager = h.server.manager();
  const auto factory = profile_factory();
  constexpr SessionId kFloodSession = SessionId{1} << 20;
  manager.open(kFloodSession, factory(kFloodSession, "accept"),
               Priority::High);
  std::atomic<bool> flood{true};
  // Several flooders: feed_batch copies the run (tens of us per call), so
  // one thread alone leaves refill gaps where a wire feed could slip in
  // without ever seeing Blocked.
  std::vector<std::thread> flooders;
  for (int i = 0; i < 3; ++i) {
    flooders.emplace_back([&] {
      const auto big = word_of(20000);
      while (flood.load(std::memory_order_relaxed))
        manager.feed_batch(kFloodSession, big);  // Blocked = just retry
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port()));
  constexpr std::size_t kSessionCount = 8;
  std::string stream = encode_hello();
  for (std::size_t s = 1; s <= kSessionCount; ++s) {
    stream += encode_open(s, "count:3");
    stream += encode_feed_batch(s, word_of(3));
    stream += encode_close(s);
  }
  // One small write: the whole stream is in the server's rcvbuf long
  // before the park lifts, so no further input edge will arrive.
  ASSERT_TRUE(client.send_all(stream));

  // Let the reactor park on a Blocked feed while the flood saturates the
  // ring, then stop the flood so the poll-retry can admit the rest.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  flood.store(false, std::memory_order_relaxed);
  for (auto& t : flooders) t.join();
  manager.close(kFloodSession);

  std::size_t verdicts = 0;
  WireEvent ev;
  while (verdicts < kSessionCount && client.next_event(ev)) {
    if (ev.kind == WireEvent::Kind::Verdict) {
      EXPECT_EQ(ev.verdict, Verdict::Accepting);
      EXPECT_EQ(ev.fed, 3u);
      ++verdicts;
    }
  }
  EXPECT_EQ(verdicts, kSessionCount);
  EXPECT_TRUE(client.decoder().ok()) << client.decoder().error();
}

TEST(NetLoopback, GracefulDrainFlushesTruncatedVerdicts) {
  auto h = std::make_unique<Harness>();
  ASSERT_TRUE(h->start()) << h->transport.error();

  TestClient client;
  ASSERT_TRUE(client.connect_to(h->transport.port()));
  std::string stream = encode_hello();
  stream += encode_open(9, "count:8");
  stream += encode_feed_batch(9, word_of(4));  // never closed by the client
  ASSERT_TRUE(client.send_all(stream));

  // Wait for the HelloAck so the server has definitely consumed the open.
  WireEvent ev;
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);

  h->transport.stop();  // graceful drain: truncate-close, flush, close

  bool saw_verdict = false;
  for (const auto& event : client.drain_until_eof()) {
    if (event.kind != WireEvent::Kind::Verdict) continue;
    saw_verdict = true;
    EXPECT_EQ(event.session, 9u);
    // count:8 truncated at 4 symbols: settled Rejecting, heuristically.
    EXPECT_EQ(event.verdict, Verdict::Rejecting);
    EXPECT_FALSE(event.exact);
    EXPECT_EQ(event.fed, 4u);
  }
  EXPECT_TRUE(saw_verdict);
  EXPECT_EQ(h->server.manager().stats().active, 0u);
}

TEST(NetLoopback, SubmitQuerySessionRoundTripsUnderByteSplits) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  std::string stream = encode_hello();
  stream += encode_submit_query(1, "within(4){ a ; (b | c)+ }");
  stream += encode_feed_batch(1, {{Symbol::chr('a'), 10},
                                  {Symbol::chr('c'), 12},
                                  {Symbol::chr('b'), 14}});
  stream += encode_close(1);

  // chunk=1 with pacing: the query text itself arrives one byte per
  // read(), so the decoder's frame reassembly -- not the parser -- must
  // hold the partial body.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{5}}) {
    TestClient client;
    ASSERT_TRUE(client.connect_to(h.transport.port()));
    ASSERT_TRUE(client.send_all(stream, chunk, /*pace_us=*/chunk == 1 ? 50
                                                                      : 0));
    WireEvent ev;
    ASSERT_TRUE(client.next_event(ev)) << "chunk=" << chunk;
    EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
    ASSERT_TRUE(client.next_event(ev)) << "chunk=" << chunk;
    EXPECT_EQ(ev.kind, WireEvent::Kind::Verdict);
    EXPECT_EQ(ev.session, 1u);
    EXPECT_EQ(ev.verdict, Verdict::Accepting) << "chunk=" << chunk;
    EXPECT_TRUE(ev.exact);
    EXPECT_EQ(ev.fed, 3u);
  }
  EXPECT_GE(h.server.manager().stats().query_compiled, 2u);
}

TEST(NetLoopback, MalformedSubmitQueryKillsTheConnectionNotTheServer) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  TestClient bad;
  ASSERT_TRUE(bad.connect_to(h.transport.port()));
  std::string stream = encode_hello();
  stream += encode_submit_query(3, "within(){ oops");
  // Paced 1-byte writes: the server sees the malformed body assemble
  // byte by byte and must reject only once the frame completes.
  ASSERT_TRUE(bad.send_all(stream, /*chunk=*/1, /*pace_us=*/50));

  // The sticky DecodeError closes the connection; the drain must see EOF
  // rather than hang, and no Verdict/Shed for the dead session.
  for (const auto& event : bad.drain_until_eof(5000)) {
    EXPECT_NE(event.kind, WireEvent::Kind::Verdict);
    EXPECT_NE(event.kind, WireEvent::Kind::Shed);
  }
  EXPECT_EQ(h.server.manager().stats().opened, 0u);

  // The listener is unharmed: a fresh client still gets full service.
  TestClient good;
  ASSERT_TRUE(good.connect_to(h.transport.port()));
  std::string ok = encode_hello();
  ok += encode_submit_query(4, "(a)+");
  ok += encode_feed_batch(4, {{Symbol::chr('a'), 1}, {Symbol::chr('a'), 2}});
  ok += encode_close(4);
  ASSERT_TRUE(good.send_all(ok));
  WireEvent ev;
  ASSERT_TRUE(good.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
  ASSERT_TRUE(good.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Verdict);
  EXPECT_EQ(ev.verdict, Verdict::Accepting);
}

TEST(NetLoopback, TruncatedSubmitQueryBodyNeverHangsTheConnection) {
  Harness h;
  ASSERT_TRUE(h.start()) << h.transport.error();

  TestClient client;
  ASSERT_TRUE(client.connect_to(h.transport.port()));
  std::string stream = encode_hello();
  // A SubmitQuery frame whose header promises more body bytes than the
  // client will ever send, then EOF mid-frame.
  const std::string frame = encode_submit_query(6, "within(3){ a ; b }");
  stream += frame.substr(0, frame.size() - 7);
  ASSERT_TRUE(client.send_all(stream, /*chunk=*/1, /*pace_us=*/50));

  WireEvent ev;
  ASSERT_TRUE(client.next_event(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
  client.close();  // EOF with the frame still open

  // The server must tear the half-open connection down without opening a
  // session; give the reactor a moment and assert nothing leaked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.server.manager().stats().active > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(h.server.manager().stats().opened, 0u);
  EXPECT_EQ(h.server.manager().stats().active, 0u);
}

// The slow-reader test can race a close into a write: never die on
// SIGPIPE.  Runs before gtest_main enters main.
const int kIgnoreSigpipe = [] {
  std::signal(SIGPIPE, SIG_IGN);
  return 0;
}();

}  // namespace
