// Tests for clock constraints Phi(C) and timed Buchi automata (section 2.1),
// including exact acceptance on lasso timed words via capped valuations.

#include <gtest/gtest.h>

#include "rtw/automata/clocks.hpp"
#include "rtw/automata/timed_buchi.hpp"
#include "rtw/core/error.hpp"

namespace {

using namespace rtw::automata;
using rtw::core::Symbol;
using rtw::core::TimedSymbol;
using rtw::core::TimedWord;

// ------------------------------------------------------ ClockConstraint

TEST(ClockConstraintTest, PrimitiveForms) {
  // Phi(X) grammar: x <= c, c <= x, !d, d1 & d2.
  const auto le = ClockConstraint::le(0, 5);
  EXPECT_TRUE(le.satisfied({5}));
  EXPECT_TRUE(le.satisfied({0}));
  EXPECT_FALSE(le.satisfied({6}));

  const auto ge = ClockConstraint::ge(0, 5);
  EXPECT_TRUE(ge.satisfied({5}));
  EXPECT_FALSE(ge.satisfied({4}));

  const auto nt = !le;
  EXPECT_TRUE(nt.satisfied({6}));
  EXPECT_FALSE(nt.satisfied({5}));

  const auto both = le && ge;  // x == 5
  EXPECT_TRUE(both.satisfied({5}));
  EXPECT_FALSE(both.satisfied({4}));
  EXPECT_FALSE(both.satisfied({6}));
}

TEST(ClockConstraintTest, DerivedForms) {
  EXPECT_TRUE(ClockConstraint::lt(0, 3).satisfied({2}));
  EXPECT_FALSE(ClockConstraint::lt(0, 3).satisfied({3}));
  EXPECT_TRUE(ClockConstraint::gt(0, 3).satisfied({4}));
  EXPECT_FALSE(ClockConstraint::gt(0, 3).satisfied({3}));
  EXPECT_TRUE(ClockConstraint::eq(0, 3).satisfied({3}));
  EXPECT_FALSE(ClockConstraint::eq(0, 3).satisfied({2}));
}

TEST(ClockConstraintTest, TopIsAlwaysTrue) {
  EXPECT_TRUE(ClockConstraint::top().satisfied({}));
  EXPECT_TRUE(ClockConstraint::top().satisfied({99, 3}));
  EXPECT_EQ(ClockConstraint::top().max_constant(), 0u);
}

TEST(ClockConstraintTest, MultiClockConjunction) {
  const auto d = ClockConstraint::le(0, 10) && ClockConstraint::ge(1, 2);
  EXPECT_TRUE(d.satisfied({10, 2}));
  EXPECT_FALSE(d.satisfied({11, 2}));
  EXPECT_FALSE(d.satisfied({10, 1}));
  EXPECT_EQ(d.max_constant(), 10u);
  EXPECT_EQ(d.clocks_used(), 2u);
}

TEST(ClockConstraintTest, OutOfRangeClockThrows) {
  EXPECT_THROW(ClockConstraint::le(3, 1).satisfied({0}),
               rtw::core::ModelError);
}

TEST(ClockConstraintTest, ToStringRenders) {
  const auto d = !(ClockConstraint::le(0, 2) && ClockConstraint::ge(1, 7));
  const auto text = d.to_string();
  EXPECT_NE(text.find("x0<=2"), std::string::npos);
  EXPECT_NE(text.find("7<=x1"), std::string::npos);
  EXPECT_NE(text.find("!"), std::string::npos);
}

TEST(ValuationTest, AdvanceCapsExactly) {
  // Capping at cmax+1 is exact: any value above cmax satisfies the same
  // primitive constraints.
  const ClockValuation nu{3, 7};
  const auto moved = advance(nu, 4, 9);
  EXPECT_EQ(moved, (ClockValuation{7, 9}));  // 11 capped at 9
  const auto c = ClockConstraint::ge(1, 8);
  EXPECT_TRUE(c.satisfied(moved));  // capped 9 still >= 8
}

TEST(ValuationTest, ResetZeroesListedClocks) {
  const auto nu = reset({4, 5, 6}, {0, 2});
  EXPECT_EQ(nu, (ClockValuation{0, 5, 0}));
  EXPECT_THROW(reset({1}, {3}), rtw::core::ModelError);
}

// --------------------------------------------------- TimedBuchiAutomaton

Symbol A() { return Symbol::chr('a'); }
Symbol B() { return Symbol::chr('b'); }

/// The classic TBA: accepts timed words (ab)^omega where each b arrives
/// within 2 ticks of the preceding a (clock 0 reset on a, guard x0 <= 2
/// on b).
TimedBuchiAutomaton within_two() {
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, A(), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, B(), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  return tba;
}

TimedWord ab_lasso(rtw::core::Tick gap, rtw::core::Tick period) {
  return TimedWord::lasso(
      {}, {{A(), 0}, {B(), gap}}, period);
}

TEST(TbaTest, AcceptsWhenGuardHolds) {
  auto tba = within_two();
  EXPECT_TRUE(tba.accepts_lasso(ab_lasso(1, 4)));
  EXPECT_TRUE(tba.accepts_lasso(ab_lasso(2, 4)));
}

TEST(TbaTest, RejectsWhenGuardFails) {
  auto tba = within_two();
  EXPECT_FALSE(tba.accepts_lasso(ab_lasso(3, 6)));
}

TEST(TbaTest, RejectsWrongSymbols) {
  auto tba = within_two();
  auto w = TimedWord::lasso({}, {{A(), 0}, {A(), 1}}, 4);
  EXPECT_FALSE(tba.accepts_lasso(w));
}

TEST(TbaTest, RunPrefixTracksConfigurations) {
  auto tba = within_two();
  auto w = ab_lasso(1, 4);
  const auto after_a = tba.run_prefix(w, 1);
  ASSERT_EQ(after_a.size(), 1u);
  EXPECT_EQ(after_a.begin()->state, 1u);
  EXPECT_EQ(after_a.begin()->valuation, (ClockValuation{0}));  // reset on a
  const auto after_ab = tba.run_prefix(w, 2);
  ASSERT_EQ(after_ab.size(), 1u);
  EXPECT_EQ(after_ab.begin()->state, 0u);
  EXPECT_EQ(after_ab.begin()->valuation, (ClockValuation{1}));
}

TEST(TbaTest, DeadPrefixRejects) {
  auto tba = within_two();
  // First b arrives 3 ticks after a: run dies immediately.
  auto w = TimedWord::lasso({{A(), 0}, {B(), 3}}, {{A(), 4}, {B(), 5}}, 4);
  EXPECT_TRUE(tba.run_prefix(w, 2).empty());
  EXPECT_FALSE(tba.accepts_lasso(w));
}

TEST(TbaTest, LassoRepresentationRequired) {
  auto tba = within_two();
  EXPECT_THROW(tba.accepts_lasso(TimedWord::text_at("ab", 0)),
               rtw::core::ModelError);
}

TEST(TbaTest, ClocklessTbaIsPlainBuchi) {
  // Corollary 3.2 uses a TBA with C = {}: behaves as an untimed automaton.
  TimedBuchiAutomaton tba(2, 0, 0);
  tba.add_transition({0, 1, A(), {}, ClockConstraint::top()});
  tba.add_transition({1, 0, B(), {}, ClockConstraint::top()});
  tba.add_final(0);
  EXPECT_TRUE(tba.accepts_lasso(ab_lasso(7, 100)));
  EXPECT_FALSE(tba.accepts_lasso(
      TimedWord::lasso({}, {{A(), 0}, {A(), 1}}, 4)));
}

TEST(TbaTest, ConstructionValidation) {
  TimedBuchiAutomaton tba(2, 0, 1);
  EXPECT_THROW(tba.add_transition({0, 9, A(), {}, ClockConstraint::top()}),
               rtw::core::ModelError);
  EXPECT_THROW(tba.add_transition({0, 1, A(), {4}, ClockConstraint::top()}),
               rtw::core::ModelError);
  EXPECT_THROW(tba.add_transition({0, 1, A(), {}, ClockConstraint::le(3, 1)}),
               rtw::core::ModelError);
  EXPECT_THROW(TimedBuchiAutomaton(2, 5, 0), rtw::core::ModelError);
}

TEST(TbaTest, MaxConstantAcrossGuards) {
  TimedBuchiAutomaton tba(2, 0, 2);
  tba.add_transition({0, 1, A(), {}, ClockConstraint::le(0, 7)});
  tba.add_transition({1, 0, B(), {}, ClockConstraint::ge(1, 12)});
  EXPECT_EQ(tba.max_constant(), 12u);
}

/// Nondeterministic TBA: on 'a' either reset or keep the clock; accept
/// requires eventually taking a b-transition guarded x0 >= 3.  Tests that
/// the product search explores both branches.
TEST(TbaTest, NondeterministicBranching) {
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 0, A(), {0}, ClockConstraint::top()});  // reset
  tba.add_transition({0, 0, A(), {}, ClockConstraint::top()});   // keep
  tba.add_transition({0, 1, B(), {}, ClockConstraint::ge(0, 3)});
  tba.add_transition({1, 0, A(), {}, ClockConstraint::top()});
  tba.add_final(1);
  // a@1 a@2 b@3 repeating with period 3: the keep-branch accumulates 3
  // ticks by the b, so acceptance holds (the capped-valuation abstraction
  // keeps the ever-growing clock finite).
  auto w = TimedWord::lasso({}, {{A(), 1}, {A(), 2}, {B(), 3}}, 3);
  EXPECT_TRUE(tba.accepts_lasso(w));
  // With everything at the same instant the guard can never reach 3.
  auto flat = TimedWord::lasso(
      {}, {{A(), 1}, {A(), 1}, {B(), 1}}, 0);
  EXPECT_FALSE(tba.accepts_lasso(flat));
}

// Property sweep: within_two acceptance as a function of the a->b gap.
class GapProperty
    : public ::testing::TestWithParam<std::pair<unsigned, bool>> {};

TEST_P(GapProperty, MatchesGuardArithmetic) {
  const auto [gap, expected] = GetParam();
  auto tba = within_two();
  EXPECT_EQ(tba.accepts_lasso(ab_lasso(gap, gap + 3)), expected)
      << "gap=" << gap;
}

INSTANTIATE_TEST_SUITE_P(
    Gaps, GapProperty,
    ::testing::Values(std::pair{0u, true}, std::pair{1u, true},
                      std::pair{2u, true}, std::pair{3u, false},
                      std::pair{5u, false}, std::pair{10u, false}));

}  // namespace

// ------------------------------------------- emptiness / witness extraction

namespace emptiness {

using namespace rtw::automata;
using rtw::core::Symbol;
using rtw::core::TimedWord;

TEST(TbaEmptinessTest, WithinTwoIsNonEmpty) {
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::le(0, 2)});
  tba.add_final(0);
  EXPECT_FALSE(tba.empty_wellbehaved());
  const auto witness = tba.witness_wellbehaved();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->is_lasso_rep());
  EXPECT_EQ(witness->well_behaved(), rtw::core::Certificate::Proven);
  EXPECT_TRUE(tba.accepts_lasso(*witness));
}

TEST(TbaEmptinessTest, ContradictoryGuardIsEmpty) {
  // b must come at least 5 after a AND at most 2 after it: impossible.
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'),
                      {},
                      ClockConstraint::ge(0, 5) && ClockConstraint::le(0, 2)});
  tba.add_final(0);
  EXPECT_TRUE(tba.empty_wellbehaved());
}

TEST(TbaEmptinessTest, ZenoOnlyLanguageIsEmpty) {
  // The cycle requires x0 == 0 at every step with no reset gaps: only
  // zero-delay (Zeno) runs exist, which no well-behaved word realizes.
  TimedBuchiAutomaton tba(1, 0, 1);
  tba.add_transition({0, 0, Symbol::chr('a'), {}, ClockConstraint::le(0, 0)});
  tba.add_final(0);
  EXPECT_TRUE(tba.empty_wellbehaved());
}

TEST(TbaEmptinessTest, ResetMakesZenoGuardSatisfiableForever) {
  // Same guard but the transition resets the clock: positive delays are
  // now... still forbidden (guard checks after advance).  A second looser
  // transition restores non-emptiness.
  TimedBuchiAutomaton tba(1, 0, 1);
  tba.add_transition({0, 0, Symbol::chr('a'), {0}, ClockConstraint::le(0, 0)});
  tba.add_final(0);
  EXPECT_TRUE(tba.empty_wellbehaved());
  tba.add_transition({0, 0, Symbol::chr('b'), {0}, ClockConstraint::le(0, 3)});
  EXPECT_FALSE(tba.empty_wellbehaved());
  const auto witness = tba.witness_wellbehaved();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(tba.accepts_lasso(*witness));
}

TEST(TbaEmptinessTest, UnreachableFinalIsEmpty) {
  TimedBuchiAutomaton tba(2, 0, 0);
  tba.add_transition({0, 0, Symbol::chr('a'), {}, ClockConstraint::top()});
  tba.add_final(1);
  EXPECT_TRUE(tba.empty_wellbehaved());
}

TEST(TbaEmptinessTest, WitnessRespectsLowerBoundGuards) {
  // b only after at least 3 ticks since the a that reset the clock.
  TimedBuchiAutomaton tba(2, 0, 1);
  tba.add_transition({0, 1, Symbol::chr('a'), {0}, ClockConstraint::top()});
  tba.add_transition({1, 0, Symbol::chr('b'), {}, ClockConstraint::ge(0, 3)});
  tba.add_final(0);
  const auto witness = tba.witness_wellbehaved();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(tba.accepts_lasso(*witness));
  EXPECT_GE(witness->lasso_period(), 3u);
}

}  // namespace emptiness
