// Tests for section 5.2's substrate: mobility models, the range predicate,
// the connectivity oracles, and the discrete-event simulator semantics.

#include <gtest/gtest.h>

#include "rtw/adhoc/mobility.hpp"
#include "rtw/adhoc/network.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/simulator.hpp"
#include "rtw/core/error.hpp"

namespace {

using namespace rtw::adhoc;

std::unique_ptr<Mobility> at(double x, double y) {
  return std::make_unique<Stationary>(Vec2{x, y});
}

/// A 4-node line: 0 -- 1 -- 2 -- 3 with unit spacing 10, range 12.
Network line4() {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(at(10.0 * i, 0));
  return Network(std::move(nodes), 12.0);
}

// --------------------------------------------------------------- mobility

TEST(MobilityTest, StationaryStaysPut) {
  Stationary m({3, 4});
  EXPECT_EQ(m.position(0), (Vec2{3, 4}));
  EXPECT_EQ(m.position(1000), (Vec2{3, 4}));
}

TEST(MobilityTest, ConstantVelocityMovesLinearly) {
  ConstantVelocity m({0, 0}, {1, 2}, {100, 100});
  EXPECT_EQ(m.position(0), (Vec2{0, 0}));
  EXPECT_EQ(m.position(10), (Vec2{10, 20}));
}

TEST(MobilityTest, ConstantVelocityReflects) {
  ConstantVelocity m({90, 0}, {5, 0}, {100, 100});
  // At t=4: 110 -> reflected to 90; at t=2: 100 (the border).
  EXPECT_DOUBLE_EQ(m.position(2).x, 100.0);
  EXPECT_DOUBLE_EQ(m.position(4).x, 90.0);
  // Never leaves the region.
  for (Tick t = 0; t < 200; ++t) {
    EXPECT_GE(m.position(t).x, 0.0);
    EXPECT_LE(m.position(t).x, 100.0);
  }
}

TEST(MobilityTest, RandomWaypointStaysInRegion) {
  RandomWaypoint m({50, 80}, 0.5, 2.0, 5, 42, 0);
  for (Tick t = 0; t < 500; ++t) {
    const Vec2 p = m.position(t);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 80.0);
  }
}

TEST(MobilityTest, RandomWaypointIsDeterministic) {
  RandomWaypoint a({100, 100}, 1, 2, 10, 7, 3);
  RandomWaypoint b({100, 100}, 1, 2, 10, 7, 3);
  for (Tick t = 0; t < 100; ++t) EXPECT_EQ(a.position(t), b.position(t));
}

TEST(MobilityTest, DifferentNodesGetDifferentPaths) {
  RandomWaypoint a({100, 100}, 1, 2, 10, 7, 0);
  RandomWaypoint b({100, 100}, 1, 2, 10, 7, 1);
  bool differs = false;
  for (Tick t = 0; t < 50 && !differs; ++t)
    differs = !(a.position(t) == b.position(t));
  EXPECT_TRUE(differs);
}

TEST(MobilityTest, RandomWaypointMovesBetweenPauses) {
  RandomWaypoint m({100, 100}, 1, 1, 3, 11, 0);
  bool moved = false;
  for (Tick t = 1; t < 100 && !moved; ++t)
    moved = !(m.position(t) == m.position(t - 1));
  EXPECT_TRUE(moved);
}

TEST(MobilityTest, SpeedValidation) {
  EXPECT_THROW(RandomWaypoint({10, 10}, 0, 1, 0, 1, 0), rtw::core::ModelError);
  EXPECT_THROW(RandomWaypoint({10, 10}, 2, 1, 0, 1, 0), rtw::core::ModelError);
}

// ---------------------------------------------------------------- network

TEST(NetworkTest, RangePredicateIsUnitDisk) {
  const auto net = line4();
  EXPECT_TRUE(net.range(0, 1, 0));
  EXPECT_TRUE(net.range(1, 0, 0));   // symmetric
  EXPECT_FALSE(net.range(0, 2, 0));  // distance 20 > 12
  EXPECT_FALSE(net.range(1, 1, 0));  // irreflexive
}

TEST(NetworkTest, NeighborsAtTime) {
  const auto net = line4();
  EXPECT_EQ(net.neighbors(0, 0), std::vector<NodeId>{1});
  EXPECT_EQ(net.neighbors(1, 0), (std::vector<NodeId>{0, 2}));
}

TEST(NetworkTest, StaticShortestHops) {
  const auto net = line4();
  EXPECT_EQ(net.static_shortest_hops(0, 3, 0), 3u);
  EXPECT_EQ(net.static_shortest_hops(0, 0, 0), 0u);
  EXPECT_EQ(net.static_shortest_hops(1, 3, 0), 2u);
}

TEST(NetworkTest, DisconnectedReturnsNull) {
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(1000, 0));
  Network net(std::move(nodes), 12.0);
  EXPECT_EQ(net.static_shortest_hops(0, 1, 0), std::nullopt);
  EXPECT_EQ(net.earliest_delivery(0, 1, 0, 100), std::nullopt);
}

TEST(NetworkTest, EarliestDeliveryOnStaticLine) {
  const auto net = line4();
  // One hop per tick: 0 -> 3 takes three ticks.
  EXPECT_EQ(net.earliest_delivery(0, 3, 0, 100), Tick{3});
  EXPECT_EQ(net.earliest_delivery(0, 3, 5, 100), Tick{8});
}

TEST(NetworkTest, EarliestDeliveryExploitsMobility) {
  // Node 1 ferries between node 0 and node 2, who are never in range of
  // each other.
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(std::make_unique<ConstantVelocity>(Vec2{0, 0}, Vec2{5, 0},
                                                     Region{100, 100}));
  nodes.push_back(at(100, 0));
  Network net(std::move(nodes), 12.0);
  const auto t = net.earliest_delivery(0, 2, 0, 200);
  ASSERT_TRUE(t.has_value());
  // The ferry reaches range of node 2 (x >= 88) at t = 18; handoff at 18,
  // delivery at 19 (0 -> 1 could happen any time the ferry is near 0).
  EXPECT_GE(*t, 18u);
  EXPECT_LE(*t, 20u);
}

TEST(NetworkTest, RandomConfigIsDeterministic) {
  NetworkConfig config;
  config.nodes = 8;
  config.seed = 5;
  Network a(config), b(config);
  for (NodeId i = 0; i < 8; ++i)
    for (Tick t : {0u, 10u, 50u})
      EXPECT_EQ(a.position(i, t), b.position(i, t));
}

TEST(NetworkTest, Validation) {
  NetworkConfig config;
  config.nodes = 0;
  EXPECT_THROW(Network{config}, rtw::core::ModelError);
  const auto net = line4();
  EXPECT_THROW(net.position(9, 0), rtw::core::ModelError);
}

// -------------------------------------------------------------- simulator

TEST(SimulatorTest, OneHopTakesOneTimeUnit) {
  const auto net = line4();
  Simulator sim(net, flooding_factory());
  sim.schedule({1, 0, 1, 5});
  const auto result = sim.run(20);
  const auto delivery = result.delivery_of(1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->delivered_at, 6u);  // sent at 5, received at 6
  EXPECT_EQ(delivery->hops, 1u);
}

TEST(SimulatorTest, BroadcastReachesOnlyNeighbors) {
  const auto net = line4();
  Simulator sim(net, flooding_factory(1));  // TTL 1: one hop, no rebroadcast
  sim.schedule({1, 0, 3, 0});
  const auto result = sim.run(5);
  // Node 0's broadcast at t=0 reaches only node 1.
  ASSERT_EQ(result.receives.size(), 1u);
  EXPECT_EQ(result.receives[0].by, 1u);
  EXPECT_FALSE(result.delivery_of(1).has_value());
}

TEST(SimulatorTest, UnicastToOutOfRangeIsLost) {
  // A protocol that unicasts data to a non-neighbor: the packet vanishes.
  class Blind final : public RoutingProtocol {
  public:
    std::string name() const override { return "blind"; }
    void on_tick(NodeContext&) override {}
    void on_receive(NodeContext&, const Packet&) override {}
    void originate(NodeContext& ctx, NodeId dst,
                   std::uint64_t data_id) override {
      Packet p;
      p.kind = Packet::Kind::Data;
      p.origin = ctx.self();
      p.final_dst = dst;
      p.data_id = data_id;
      ctx.send(std::move(p), dst);  // direct unicast regardless of range
    }
  };
  const auto net = line4();
  Simulator sim(net, [](NodeId) { return std::make_unique<Blind>(); });
  sim.schedule({1, 0, 3, 0});  // 0 -> 3 is far out of range
  sim.schedule({2, 0, 1, 0});  // 0 -> 1 is in range
  const auto result = sim.run(5);
  EXPECT_FALSE(result.delivery_of(1).has_value());
  EXPECT_TRUE(result.delivery_of(2).has_value());
}

TEST(SimulatorTest, TransmissionsAreLogged) {
  const auto net = line4();
  Simulator sim(net, flooding_factory());
  sim.schedule({1, 0, 3, 0});
  const auto result = sim.run(20);
  EXPECT_GT(result.sends.size(), 0u);
  EXPECT_GT(result.receives.size(), 0u);
  EXPECT_EQ(result.originated, 1u);
  EXPECT_GT(result.data_transmissions, 0u);
}

TEST(SimulatorTest, Validation) {
  const auto net = line4();
  EXPECT_THROW(Simulator(net, nullptr), rtw::core::ModelError);
  Simulator sim(net, flooding_factory());
  EXPECT_THROW(sim.schedule({1, 9, 0, 0}), rtw::core::ModelError);
}

// -------------------------------------------------------------- protocols

struct ProtocolCase {
  const char* label;
  ProtocolFactory factory;
};

class ProtocolDelivery : public ::testing::TestWithParam<int> {};

ProtocolFactory factory_for(int which) {
  switch (which) {
    case 0:
      return flooding_factory();
    case 1:
      return dsdv_factory(10);
    case 2:
      return dsr_factory();
    default:
      return aodv_factory();
  }
}

TEST_P(ProtocolDelivery, DeliversOnStaticLine) {
  const auto net = line4();
  Simulator sim(net, factory_for(GetParam()));
  // Give proactive protocols warm-up time before the message.
  sim.schedule({1, 0, 3, 40});
  const auto result = sim.run(120);
  const auto delivery = result.delivery_of(1);
  ASSERT_TRUE(delivery.has_value()) << "protocol " << GetParam();
  EXPECT_EQ(delivery->hops, 3u);  // the line forces the 3-hop path
}

TEST_P(ProtocolDelivery, NoDeliveryAcrossPartition) {
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(10, 0));
  nodes.push_back(at(500, 0));  // unreachable island
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, factory_for(GetParam()));
  sim.schedule({1, 0, 2, 20});
  const auto result = sim.run(150);
  EXPECT_FALSE(result.delivery_of(1).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolDelivery,
                         ::testing::Values(0, 1, 2, 3));

TEST(ProtocolTest, DsdvRoutesWithoutPerMessageControl) {
  // After convergence, DSDV sends data with no extra control packets
  // tied to the message (overhead is periodic, not per-message).
  const auto net = line4();
  Simulator sim(net, dsdv_factory(10));
  sim.schedule({1, 0, 3, 50});
  const auto result = sim.run(100);
  ASSERT_TRUE(result.delivery_of(1).has_value());
  // Exactly 3 data transmissions: one per hop on the line.
  EXPECT_EQ(result.data_transmissions, 3u);
}

TEST(ProtocolTest, DsrCachesRoutesAcrossMessages) {
  const auto net = line4();
  Simulator sim(net, dsr_factory());
  sim.schedule({1, 0, 3, 10});
  sim.schedule({2, 0, 3, 60});
  const auto result = sim.run(120);
  ASSERT_TRUE(result.delivery_of(1).has_value());
  ASSERT_TRUE(result.delivery_of(2).has_value());
  // Second message reuses the cached route: no control packets are sent
  // after tick 59.
  std::uint64_t late_control = 0;
  for (const auto& send : result.sends)
    if (send.packet.kind != Packet::Kind::Data && send.time >= 60)
      ++late_control;
  EXPECT_EQ(late_control, 0u);
}

TEST(ProtocolTest, AodvDiscoversThenForwards) {
  const auto net = line4();
  Simulator sim(net, aodv_factory());
  sim.schedule({1, 0, 3, 10});
  const auto result = sim.run(120);
  const auto delivery = result.delivery_of(1);
  ASSERT_TRUE(delivery.has_value());
  // Discovery costs at least one RREQ flood + RREP chain.
  EXPECT_GE(result.control_transmissions, 4u);
  EXPECT_EQ(delivery->hops, 3u);
}

TEST(ProtocolTest, FloodingHasMaximalOverhead) {
  // A diamond 0 -> {1, 2} -> 3 gives flooding redundant rebroadcasts while
  // a routed protocol uses one 2-hop path.
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(10, 5));
  nodes.push_back(at(10, -5));
  nodes.push_back(at(20, 0));
  Network net(std::move(nodes), 12.0);
  Simulator flood_sim(net, flooding_factory());
  flood_sim.schedule({1, 0, 3, 40});
  const auto flood = flood_sim.run(120);
  Simulator dsdv_sim(net, dsdv_factory(10));
  dsdv_sim.schedule({1, 0, 3, 40});
  const auto dsdv = dsdv_sim.run(120);
  // Flooding transmits data from every non-destination node; DSDV's data
  // path is minimal (2 hops).
  EXPECT_GT(flood.data_transmissions, dsdv.data_transmissions);
  EXPECT_EQ(dsdv.data_transmissions, 2u);
}

}  // namespace
