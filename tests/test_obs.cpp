// Tests for the rtw::obs observability layer: the Sink switchboard and
// RTW_SPAN guard, the Tracer's per-thread rings, the MetricsRegistry, the
// Chrome trace_event / JSONL exporters (including a byte-exact golden
// file), and the bit-identity of instrumented-off runs (the zero-overhead
// contract, checked through the proptest replay harness).

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>

#include "rtw/rtw.hpp"
#include "proptest.hpp"

namespace {

using rtw::obs::MetricsRegistry;
using rtw::obs::QueueOp;
using rtw::obs::Tracer;

/// Every test leaves the process sink cleared; this guard makes that
/// exception-safe.
struct SinkGuard {
  explicit SinkGuard(rtw::obs::Sink* s) { rtw::obs::set_sink(s); }
  ~SinkGuard() { rtw::obs::set_sink(nullptr); }
};

// ------------------------------------------------------ mini JSON parser

/// A tiny recursive-descent JSON validator: accepts exactly the RFC 8259
/// grammar (minus the exotic number corners) and nothing else.  Used to
/// check exporter output is *valid* JSON, not merely JSON-looking.
class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ Sink + span

TEST(SinkTest, DisabledByDefaultAndSpanIsNoop) {
  ASSERT_EQ(rtw::obs::sink(), nullptr);
  EXPECT_FALSE(rtw::obs::enabled());
  { RTW_SPAN("noop"); }  // must not crash or require a sink
}

TEST(SinkTest, SpanScopeReportsToInstalledSink) {
  Tracer tracer;
  {
    SinkGuard guard(&tracer);
    EXPECT_TRUE(rtw::obs::enabled());
    { RTW_SPAN("unit.test"); }
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.test");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
  EXPECT_EQ(spans[0].tid, 1u);
}

TEST(SinkTest, SpanCapturesSinkAtEntry) {
  // A span open when the sink is cleared still reports to the sink it
  // captured at entry -- no torn half-spans.
  Tracer tracer;
  rtw::obs::set_sink(&tracer);
  {
    RTW_SPAN("crossing");
    rtw::obs::set_sink(nullptr);
  }
  EXPECT_EQ(tracer.drain().size(), 1u);
}

// ----------------------------------------------------------------- Tracer

TEST(TracerTest, RecordsDirectSpansInStartOrder) {
  Tracer tracer;
  tracer.on_span("b", 200, 300);
  tracer.on_span("a", 100, 900);
  tracer.on_span("c", 150, 160);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "c");
  EXPECT_STREQ(spans[2].name, "b");
}

TEST(TracerTest, ParentSortsBeforeChildAtEqualStart) {
  Tracer tracer;
  tracer.on_span("child", 100, 200);
  tracer.on_span("parent", 100, 500);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "parent");  // longer span first
  EXPECT_STREQ(spans[1].name, "child");
}

TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  Tracer tracer(4);
  for (std::uint64_t i = 0; i < 6; ++i)
    tracer.on_span("s", i * 10, i * 10 + 1);
  const auto spans = tracer.drain();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  // The newest spans win: starts 20,30,40,50 survive.
  EXPECT_EQ(spans.front().start_ns, 20u);
  EXPECT_EQ(spans.back().start_ns, 50u);
}

TEST(TracerTest, ThreadsGetDenseTids) {
  Tracer tracer;
  tracer.on_span("main", 1, 2);
  std::thread worker([&tracer] { tracer.on_span("worker", 3, 4); });
  worker.join();
  EXPECT_EQ(tracer.threads_seen(), 2u);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tid, 1u);
  EXPECT_EQ(spans[1].tid, 2u);
}

TEST(TracerTest, CountsQueueOps) {
  Tracer tracer;
  tracer.on_queue_op(QueueOp::Schedule, 5);
  tracer.on_queue_op(QueueOp::Schedule, 6);
  tracer.on_queue_op(QueueOp::Fire, 5);
  EXPECT_EQ(tracer.queue_ops(QueueOp::Schedule), 2u);
  EXPECT_EQ(tracer.queue_ops(QueueOp::Fire), 1u);
  EXPECT_EQ(tracer.queue_ops(QueueOp::Drop), 0u);
}

TEST(TracerTest, EventQueueEmitsKernelOps) {
  Tracer tracer;
  SinkGuard guard(&tracer);
  rtw::sim::EventQueue q;
  int fired = 0;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(i, [&fired](rtw::sim::Tick) { ++fired; });
  q.run_until(100);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(tracer.queue_ops(QueueOp::Schedule), 5u);
  EXPECT_EQ(tracer.queue_ops(QueueOp::Fire), 5u);
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CountersAccumulateThroughStableHandles) {
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("test.obs.counter");
  const auto before = c.value();
  c.add(3);
  c.add();
  EXPECT_EQ(reg.counter("test.obs.counter").value(), before + 4);
  EXPECT_EQ(&reg.counter("test.obs.counter"), &c);  // same handle
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  auto& g = MetricsRegistry::instance().gauge("test.obs.gauge");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(MetricsRegistryTest, HistogramBinsObservations) {
  auto& h =
      MetricsRegistry::instance().histogram("test.obs.histogram", 0, 4);
  h.add(1);
  h.add(1);
  h.add(3);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total(), 3u);
  EXPECT_EQ(snap.count(1), 2u);
  EXPECT_EQ(snap.count(3), 1u);
}

TEST(MetricsRegistryTest, KindClashThrows) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.obs.clash");
  EXPECT_THROW(reg.gauge("test.obs.clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.obs.clash", 0, 4), std::logic_error);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndJsonlIsValid) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.obs.zz").add(1);
  reg.counter("test.obs.aa").add(1);
  const auto views = reg.snapshot();
  for (std::size_t i = 1; i < views.size(); ++i)
    EXPECT_LT(views[i - 1].name, views[i].name);

  std::istringstream lines(reg.to_jsonl());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonParser(line).valid()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, views.size());
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("test.obs.reset");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("test.obs.reset").value(), 2u);
}

// ------------------------------------------------- engine registry folding

TEST(EngineFoldTest, RunsFoldIntoRegistryOnlyWhenEnabled) {
  auto& reg = MetricsRegistry::instance();
  rtw::core::AcceptAll algorithm;
  const auto word =
      rtw::core::TimedWord::text_at("ab", 0);

  const auto disabled_before = reg.counter("engine.runs").value();
  (void)rtw::engine::run(algorithm, word);
  EXPECT_EQ(reg.counter("engine.runs").value(), disabled_before);

  Tracer tracer;
  SinkGuard guard(&tracer);
  (void)rtw::engine::run(algorithm, word);
  EXPECT_EQ(reg.counter("engine.runs").value(), disabled_before + 1);
}

// ---------------------------------------------------------------- exporters

/// The deterministic workload behind the golden file: three nested spans
/// with fixed timestamps from one thread plus a few kernel-op tallies.
void record_golden_workload(Tracer& tracer) {
  tracer.on_span("outer", 1000, 9000);
  tracer.on_span("inner", 2000, 5000);
  tracer.on_span("leaf", 2500, 3000);
  tracer.on_queue_op(QueueOp::Schedule, 1);
  tracer.on_queue_op(QueueOp::Schedule, 2);
  tracer.on_queue_op(QueueOp::Schedule, 3);
  tracer.on_queue_op(QueueOp::Fire, 1);
  tracer.on_queue_op(QueueOp::Fire, 2);
  tracer.on_queue_op(QueueOp::Drop, 9);
}

TEST(ChromeTraceTest, MatchesGoldenFileByteForByte) {
  Tracer tracer;
  record_golden_workload(tracer);
  const std::string produced = rtw::obs::chrome_trace_json(tracer);

  std::ifstream golden(std::string(RTW_TEST_DATA_DIR) +
                       "/chrome_trace_golden.json");
  ASSERT_TRUE(golden) << "missing golden file";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(produced, expected.str());
}

TEST(ChromeTraceTest, OutputIsValidJsonWithNestedSpans) {
  Tracer tracer;
  record_golden_workload(tracer);
  const std::string json = rtw::obs::chrome_trace_json(tracer);
  EXPECT_TRUE(JsonParser(json).valid()) << json;

  // Structure: the traceEvents array exists and spans nest -- each later
  // "X" event with the same tid starts at or after its predecessor and the
  // drain order puts enclosing spans first.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[1].end_ns);   // outer encloses inner
  EXPECT_LE(spans[1].start_ns, spans[2].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[2].end_ns);   // inner encloses leaf
  // Counter events carry nested args objects.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":3}"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTracerYieldsValidEmptyTrace) {
  Tracer tracer;
  const std::string json = rtw::obs::chrome_trace_json(tracer);
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(SpansJsonlTest, OneValidLinePerSpanRebasedToZero) {
  Tracer tracer;
  record_golden_workload(tracer);
  std::istringstream lines(rtw::obs::spans_jsonl(tracer));
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonParser(line).valid()) << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
  // Rebased: the earliest span starts at 0.
  EXPECT_NE(rtw::obs::spans_jsonl(tracer).find("\"start_ns\":0"),
            std::string::npos);
}

TEST(FoldQueueOpsTest, TalliesLandAsNamedCounters) {
  auto& reg = MetricsRegistry::instance();
  const auto schedule_before = reg.counter("queue.schedule").value();
  const auto drop_before = reg.counter("queue.drop").value();
  Tracer tracer;
  record_golden_workload(tracer);
  rtw::obs::fold_queue_ops(tracer, reg);
  EXPECT_EQ(reg.counter("queue.schedule").value(), schedule_before + 3);
  EXPECT_EQ(reg.counter("queue.drop").value(), drop_before + 1);
}

// -------------------------------------------- zero-overhead bit-identity

/// RunTrace comparison modulo wall_ns (the only nondeterministic field).
std::string trace_fingerprint(const rtw::engine::EngineResult& er) {
  rtw::sim::JsonLine line;
  line.field("accepted", er.result.accepted)
      .field("exact", er.result.exact)
      .field("ticks", er.result.ticks)
      .field("f_count", er.result.f_count)
      .field("symbols", er.result.symbols_consumed)
      .field("final_tick", er.trace.final_tick)
      .field("ticks_executed", er.trace.ticks_executed)
      .field("ticks_skipped", er.trace.ticks_skipped)
      .field("events_executed", er.trace.events_executed)
      .field("queue_hwm", er.trace.queue_depth_hwm);
  return line.str();
}

TEST(ZeroOverheadTest, DisabledSinkRunsAreBitIdenticalToBaseline) {
  // Property: for random words, a run before any sink was ever installed,
  // a run with a live Tracer, and a run after the sink is cleared again
  // all agree on every deterministic field.  This is the zero-overhead
  // contract: observation must never perturb the machine.
  rtw::proptest::Config cfg;
  cfg.cases = 60;
  cfg.max_size = 16;
  const auto result = rtw::proptest::run_property(
      "obs_disabled_bit_identity", cfg,
      [](rtw::sim::Xoshiro256ss& rng, std::size_t size)
          -> std::optional<std::string> {
        const auto word = rtw::proptest::random_finite_word(rng, size);
        rtw::core::RunOptions options;
        options.horizon = 200;

        rtw::core::AcceptAll algorithm;
        const auto baseline = rtw::engine::run(algorithm, word, options);

        Tracer tracer;
        rtw::obs::set_sink(&tracer);
        const auto traced = rtw::engine::run(algorithm, word, options);
        rtw::obs::set_sink(nullptr);

        const auto after = rtw::engine::run(algorithm, word, options);

        const auto base_fp = trace_fingerprint(baseline);
        if (trace_fingerprint(traced) != base_fp)
          return "traced run diverged: " + trace_fingerprint(traced) +
                 " vs " + base_fp;
        if (trace_fingerprint(after) != base_fp)
          return "post-trace run diverged: " + trace_fingerprint(after) +
                 " vs " + base_fp;
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "obs_disabled_bit_identity", cfg, *result.failure);
}

}  // namespace
