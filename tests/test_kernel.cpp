// Parity suite for the hot-path kernel overhaul:
//   * TimedWord::Cursor yields exactly the same (sym, time) stream as
//     at() for finite, lasso and generator words, including horizon edges
//     and chunk boundaries;
//   * EventQueue v2 (slab 4-ary heap + SmallFn actions) replays the event
//     order of the v1 kernel (std::function + std::priority_queue,
//     reimplemented here as the reference model) verbatim on randomized
//     self-scheduling workloads;
//   * the schedule_at / schedule_in clamp regressions (past scheduling and
//     delay overflow near the Tick maximum);
//   * SmallFn storage/move semantics and the ThreadPool post() fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "rtw/core/error.hpp"
#include "rtw/core/tape.hpp"
#include "rtw/core/timed_word.hpp"
#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/small_fn.hpp"
#include "rtw/sim/thread_pool.hpp"

namespace {

using namespace rtw::core;

// ------------------------------------------------------- cursor parity

std::vector<TimedSymbol> by_at(const TimedWord& w, std::uint64_t n) {
  std::vector<TimedSymbol> out;
  const auto len = w.length();
  const std::uint64_t end = len ? std::min<std::uint64_t>(*len, n) : n;
  for (std::uint64_t i = 0; i < end; ++i) out.push_back(w.at(i));
  return out;
}

std::vector<TimedSymbol> by_cursor(const TimedWord& w, std::uint64_t n) {
  std::vector<TimedSymbol> out;
  auto cur = w.cursor();
  while (out.size() < n && !cur.done()) {
    EXPECT_EQ(cur.index(), out.size());
    out.push_back(cur.current());
    cur.advance();
  }
  return out;
}

TEST(CursorParity, FiniteWord) {
  const auto w = TimedWord::finite(symbols_of("abcde"), {0, 2, 2, 5, 9});
  EXPECT_EQ(by_cursor(w, 100), by_at(w, 100));
  EXPECT_EQ(by_cursor(w, 3), by_at(w, 3));
  EXPECT_EQ(by_cursor(w, 5), by_at(w, 5));  // exactly at the end
}

TEST(CursorParity, EmptyFiniteWordIsImmediatelyDone) {
  const TimedWord w;
  auto cur = w.cursor();
  EXPECT_TRUE(cur.done());
  EXPECT_EQ(cur.next(), std::nullopt);
  EXPECT_THROW(cur.current(), ModelError);
  EXPECT_THROW(cur.advance(), ModelError);
}

TEST(CursorParity, LassoWordAcrossLaps) {
  // Prefix of 3, cycle of 4, period 10: parity across several full laps
  // exercises the junction, the wraparound and the lap shift.
  const auto w = TimedWord::lasso(
      {{Symbol::chr('p'), 0}, {Symbol::chr('q'), 1}, {Symbol::chr('r'), 3}},
      {{Symbol::chr('a'), 3},
       {Symbol::chr('b'), 5},
       {Symbol::chr('c'), 5},
       {Symbol::chr('d'), 9}},
      10);
  EXPECT_EQ(by_cursor(w, 64), by_at(w, 64));
}

TEST(CursorParity, LassoWithEmptyPrefix) {
  const auto w =
      TimedWord::lasso({}, {{Symbol::chr('x'), 2}, {Symbol::chr('y'), 4}}, 4);
  EXPECT_EQ(by_cursor(w, 33), by_at(w, 33));
  EXPECT_FALSE(w.cursor().done());  // infinite: never done
}

TEST(CursorParity, LassoSingleElementCycle) {
  const auto w = TimedWord::lasso({{Symbol::chr('s'), 1}},
                                  {{Symbol::chr('t'), 7}}, 3);
  EXPECT_EQ(by_cursor(w, 50), by_at(w, 50));
}

TEST(CursorParity, GeneratorWordAcrossChunkBoundaries) {
  // 100 elements spans several 32-element cursor chunks.
  const auto w = TimedWord::generator(
      [](std::uint64_t i) {
        return TimedSymbol{Symbol::nat(i * 3 % 17), 2 * i};
      },
      {}, "parity-gen");
  EXPECT_EQ(by_cursor(w, 100), by_at(w, 100));
  EXPECT_EQ(by_cursor(w, 31), by_at(w, 31));  // just under a chunk
  EXPECT_EQ(by_cursor(w, 32), by_at(w, 32));  // exactly one chunk
  EXPECT_EQ(by_cursor(w, 33), by_at(w, 33));  // first element of chunk 2
}

TEST(CursorParity, GeneratorCurrentIsStableAcrossRereads) {
  std::atomic<int> calls{0};
  const auto w = TimedWord::generator(
      [&calls](std::uint64_t i) {
        ++calls;
        return TimedSymbol{Symbol::nat(i), i};
      },
      {}, "count-gen");
  auto cur = w.cursor();
  const auto first = cur.current();
  for (int k = 0; k < 10; ++k) EXPECT_EQ(cur.current(), first);
  // Re-reading the current element memoizes in the cursor chunk: one call.
  EXPECT_EQ(calls.load(), 1);
  cur.advance();
  EXPECT_EQ(calls.load(), 2);
}

TEST(CursorParity, ConcurrentCursorsOverOneSharedGeneratorWord) {
  // Eight threads each walk a private cursor over the same word; every
  // stream must equal the at() stream (which itself uses the shared memo).
  const auto w = TimedWord::generator(
      [](std::uint64_t i) {
        return TimedSymbol{Symbol::nat((7 * i + 3) % 29), i / 2};
      },
      {}, "shared-gen");
  const auto expected = by_at(w, 256);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      if (by_cursor(w, 256) != expected) ++mismatches;
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CursorParity, InputTapeMatchesLegacySemantics) {
  InputTape tape(TimedWord::finite(symbols_of("abc"), {1, 1, 4}));
  EXPECT_EQ(tape.next_arrival(), Tick{1});
  EXPECT_TRUE(tape.take_available(0).empty());
  EXPECT_EQ(tape.take_available(1).size(), 2u);
  EXPECT_EQ(tape.consumed(), 2u);
  EXPECT_FALSE(tape.exhausted());
  std::vector<TimedSymbol> buf;
  tape.take_available(4, buf);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_TRUE(tape.exhausted());
  EXPECT_EQ(tape.next_arrival(), std::nullopt);
}

// -------------------------------------------- EventQueue replay parity

using rtw::sim::EventQueue;
using rtw::sim::Tick;

/// The v1 kernel, verbatim: std::function actions in a binary
/// priority_queue with (at, seq) ordering and the past-scheduling clamp.
/// Serves as the reference model the v2 kernel must replay.
class LegacyEventQueue {
public:
  using Action = std::function<void(Tick)>;

  void schedule_at(Tick at, Action action) {
    heap_.push(Entry{std::max(at, now_), seq_++, std::move(action)});
  }
  void schedule_in(Tick delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }
  bool step(Tick horizon) {
    if (heap_.empty()) return false;
    if (heap_.top().at > horizon) return false;
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.at;
    entry.action(now_);
    return true;
  }
  std::size_t run_until(Tick horizon) {
    std::size_t executed = 0;
    while (step(horizon)) ++executed;
    if (heap_.empty() || heap_.top().at > horizon)
      now_ = std::max(now_, horizon);
    return executed;
  }
  Tick now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return heap_.size(); }

private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
};

/// Drives a deterministic self-scheduling workload on either kernel and
/// records the (event id, fire tick) sequence.
template <typename Queue>
std::vector<std::pair<int, Tick>> replay_workload(std::uint64_t seed) {
  rtw::sim::Xoshiro256ss rng(seed);
  Queue q;
  std::vector<std::pair<int, Tick>> fired;
  int next_id = 0;
  // Self-scheduling chain: each event may spawn up to two children at
  // rng-chosen offsets (including offset 0: same-tick scheduling from
  // inside an event, which exercises the clamp and the tie order).
  std::function<void(int, Tick)> fire = [&](int id, Tick now) {
    fired.push_back({id, now});
    if (fired.size() >= 400) return;
    const auto children = rng.uniform(std::uint64_t{3});
    for (std::uint64_t c = 0; c < children; ++c) {
      const Tick offset = rng.uniform(std::uint64_t{5});
      const int child = next_id++;
      q.schedule_in(offset, [&fire, child](Tick t) { fire(child, t); });
    }
  };
  for (int i = 0; i < 32; ++i) {
    const Tick at = rng.uniform(std::uint64_t{64});
    const int id = next_id++;
    q.schedule_at(at, [&fire, id](Tick t) { fire(id, t); });
  }
  // Interleave run_until windows with single steps to cover both APIs.
  q.run_until(20);
  while (q.step(45)) {
  }
  q.run_until(1000000);
  return fired;
}

TEST(EventQueueReplay, MatchesLegacyKernelVerbatim) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 99999ULL}) {
    const auto v1 = replay_workload<LegacyEventQueue>(seed);
    const auto v2 = replay_workload<EventQueue>(seed);
    ASSERT_EQ(v1.size(), v2.size()) << "seed " << seed;
    EXPECT_EQ(v1, v2) << "seed " << seed;
  }
}

TEST(EventQueueReplay, ClockAgreesWithLegacyAfterEachWindow) {
  LegacyEventQueue v1;
  EventQueue v2;
  for (Tick at : {3ULL, 3ULL, 10ULL, 25ULL}) {
    v1.schedule_at(at, [](Tick) {});
    v2.schedule_at(at, [](Tick) {});
  }
  for (Tick horizon : {5ULL, 9ULL, 10ULL, 11ULL, 30ULL, 7ULL}) {
    EXPECT_EQ(v1.run_until(horizon), v2.run_until(horizon));
    EXPECT_EQ(v1.now(), v2.now());
    EXPECT_EQ(v1.pending(), v2.pending());
  }
}

// ----------------------------------------------- clamp regressions

TEST(EventQueueClamp, PastSchedulingClampsToNow) {
  EventQueue q;
  Tick seen = 999;
  q.schedule_at(10, [&](Tick) {
    q.schedule_at(2, [&](Tick inner) { seen = inner; });
  });
  q.run_until(100);
  EXPECT_EQ(seen, 10u);
}

TEST(EventQueueClamp, ScheduleInOverflowSaturatesInsteadOfWrapping) {
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  EventQueue q;
  q.run_until(100);  // clock at 100
  bool fired_early = false;
  // now + delay wraps past the Tick maximum; v1 would land the event at a
  // small wrapped tick "in the past" and fire it immediately.
  q.schedule_in(kMax - 50, [&](Tick) { fired_early = true; });
  EXPECT_EQ(q.run_until(1000000), 0u);
  EXPECT_FALSE(fired_early);
  EXPECT_EQ(q.pending(), 1u);
  // The event saturated to the maximum tick and still fires there.
  EXPECT_EQ(q.run_until(kMax), 1u);
  EXPECT_TRUE(fired_early);
}

TEST(EventQueueClamp, ScheduleInZeroFromInsideEventLandsAtNow) {
  EventQueue q;
  Tick seen = 999;
  q.schedule_at(10, [&](Tick) {
    q.schedule_in(0, [&](Tick inner) { seen = inner; });
  });
  q.run_until(100);
  EXPECT_EQ(seen, 10u);
}

TEST(EventQueueClamp, ScheduleInExactlyToMaxFiresAtMax) {
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  EventQueue q;
  Tick seen = 0;
  q.schedule_in(kMax, [&](Tick t) { seen = t; });  // now = 0: no overflow
  EXPECT_EQ(q.run_until(kMax), 1u);
  EXPECT_EQ(seen, kMax);
}

TEST(EventQueueClamp, ScheduleInFromMaxTickSaturatesAtMax) {
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  EventQueue q;
  q.schedule_at(kMax, [](Tick) {});
  EXPECT_EQ(q.run_until(kMax), 1u);
  ASSERT_EQ(q.now(), kMax);
  // Any nonzero delay from the maximum tick would wrap; it must saturate
  // and still fire at kMax rather than landing in the past or vanishing.
  Tick seen = 0;
  q.schedule_in(7, [&](Tick t) { seen = t; });
  EXPECT_EQ(q.run_until(kMax), 1u);
  EXPECT_EQ(seen, kMax);
}

// --------------------------------------------------------- fault filter

/// An EventQueue with a pass-through fault filter installed: used to prove
/// the filter stage does not perturb event order or clocking.
class FilteredEventQueue : public EventQueue {
 public:
  FilteredEventQueue() {
    set_fault_filter([](Tick, std::uint64_t) { return rtw::sim::FaultDecision::fire(); });
  }
};

TEST(EventQueueFaultFilter, PassThroughFilterReplaysUnfilteredKernel) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 99999ULL}) {
    const auto plain = replay_workload<EventQueue>(seed);
    const auto filtered = replay_workload<FilteredEventQueue>(seed);
    EXPECT_EQ(plain, filtered) << "seed " << seed;
  }
}

TEST(EventQueueFaultFilter, DropDestroysActionWithoutRunningIt) {
  EventQueue q;
  q.set_fault_filter(
      [](Tick at, std::uint64_t) {
        return at == 5 ? rtw::sim::FaultDecision::drop()
                       : rtw::sim::FaultDecision::fire();
      });
  auto token = std::make_shared<int>(0);
  bool dropped_ran = false, other_ran = false;
  q.schedule_at(5, [token, &dropped_ran](Tick) { dropped_ran = true; });
  q.schedule_at(6, [&other_ran](Tick) { other_ran = true; });
  EXPECT_EQ(token.use_count(), 2);
  // The dropped event does not count as executed, but its action is
  // destroyed (the capture is released) the moment the verdict lands.
  EXPECT_EQ(q.run_until(100), 1u);
  EXPECT_FALSE(dropped_ran);
  EXPECT_TRUE(other_ran);
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(q.filtered_dropped(), 1u);
  EXPECT_EQ(q.filtered_deferred(), 0u);
}

TEST(EventQueueFaultFilter, DeferRequeuesStrictlyForward) {
  EventQueue q;
  int deferrals = 0;
  q.set_fault_filter([&deferrals](Tick at, std::uint64_t) {
    if (at == 10 && deferrals < 3) {
      ++deferrals;
      return rtw::sim::FaultDecision::defer(10);  // <= its tick: clamped
    }
    return rtw::sim::FaultDecision::fire();
  });
  std::vector<Tick> fired;
  q.schedule_at(10, [&fired](Tick t) { fired.push_back(t); });
  q.schedule_at(11, [&fired](Tick t) { fired.push_back(t); });
  EXPECT_EQ(q.run_until(100), 2u);
  // defer(10) from an event at 10 re-queues at 11 (strictly forward), so
  // the deferred event fires once, after the one already there.
  EXPECT_EQ(deferrals, 1);
  EXPECT_EQ(fired, (std::vector<Tick>{11, 11}));
  EXPECT_EQ(q.filtered_deferred(), 1u);
}

TEST(EventQueueFaultFilter, DeferAtMaxTickFiresInsteadOfLivelocking) {
  constexpr Tick kMax = std::numeric_limits<Tick>::max();
  EventQueue q;
  // A filter that always defers would pin an event at the maximum tick
  // forever; the kernel's guard fires it instead.
  q.set_fault_filter(
      [](Tick, std::uint64_t) { return rtw::sim::FaultDecision::defer(kMax); });
  bool ran = false;
  q.schedule_at(kMax, [&ran](Tick) { ran = true; });
  EXPECT_EQ(q.run_until(kMax), 1u);
  EXPECT_TRUE(ran);
}

TEST(EventQueueFaultFilter, ClearedFilterStopsFiltering) {
  EventQueue q;
  q.set_fault_filter(
      [](Tick, std::uint64_t) { return rtw::sim::FaultDecision::drop(); });
  EXPECT_TRUE(q.has_fault_filter());
  bool first_ran = false, second_ran = false;
  q.schedule_at(1, [&first_ran](Tick) { first_ran = true; });
  q.run_until(1);
  q.clear_fault_filter();
  EXPECT_FALSE(q.has_fault_filter());
  q.schedule_at(2, [&second_ran](Tick) { second_ran = true; });
  q.run_until(2);
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(q.filtered_dropped(), 1u);
}

// ----------------------------------------------------- schedule_batch

TEST(EventQueueBatch, BatchPreservesFifoTieOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&](Tick) { order.push_back(0); });
  std::vector<EventQueue::Scheduled> batch;
  for (int i = 1; i <= 3; ++i)
    batch.push_back({5, [&order, i](Tick) { order.push_back(i); }});
  batch.push_back({2, [&](Tick) { order.push_back(10); }});
  q.schedule_batch(std::move(batch));
  q.schedule_at(5, [&](Tick) { order.push_back(4); });
  EXPECT_EQ(q.run_until(100), 6u);
  EXPECT_EQ(order, (std::vector<int>{10, 0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------ SmallFn

TEST(SmallFnTest, SmallCapturesAreStoredInline) {
  int x = 7;
  rtw::sim::SmallFn<int()> f([x] { return x; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(SmallFnTest, LargeCapturesFallBackToHeap) {
  struct Big {
    char bytes[128] = {};
  } big;
  big.bytes[0] = 42;
  rtw::sim::SmallFn<int()> f([big] { return big.bytes[0]; });
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(SmallFnTest, MoveTransfersOwnershipAndDestroysOnce) {
  auto counter = std::make_shared<int>(0);
  {
    rtw::sim::SmallFn<void()> a([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    rtw::sim::SmallFn<void()> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(counter.use_count(), 2);  // exactly one live copy
    b();
  }
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_EQ(*counter, 1);
}

TEST(SmallFnTest, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(9);
  rtw::sim::SmallFn<int()> f([p = std::move(owned)] { return *p; });
  rtw::sim::SmallFn<int()> g = std::move(f);
  EXPECT_EQ(g(), 9);
}

// ------------------------------------------------------ ThreadPool post

TEST(ThreadPoolPost, PostedTasksAllRunBeforeWaitIdleReturns) {
  rtw::sim::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) pool.post([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolPost, StealingDrainsAnUnbalancedBurst) {
  // One long task pins a worker; short tasks posted round-robin must still
  // complete via stealing from the pinned worker's siblings.
  rtw::sim::ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  pool.post([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 64; ++i) pool.post([&ran] { ++ran; });
  while (ran.load() < 64) std::this_thread::yield();
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolPost, SubmitStillReturnsWorkingFutures) {
  rtw::sim::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

}  // namespace
