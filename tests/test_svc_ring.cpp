// rtw::svc ingress-primitive isolation tests: the lock-free MPSC ring and
// the admission hint table, exercised without the SessionManager on top.
//
//   1. MpscRing basics: FIFO over wraparound, full-ring rejection with the
//      value left intact, power-of-two capacity rounding, move-only
//      payloads, destructor draining.
//   2. The producers x capacity stress matrix (1/2/8 producers against
//      8/64/1024-slot rings): every pushed item arrives exactly once and
//      per-producer FIFO order survives -- the property the serving layer
//      leans on for per-session command ordering.  The matrix is the one
//      the CI TSan job runs to catch ordering bugs in the slot-sequencing
//      protocol.
//   3. SessionTable: insert/find/erase, tombstone probing, priority
//      refresh on re-open, graceful degradation when full, and concurrent
//      insert/find/inflight traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rtw/svc/ring.hpp"

namespace {

using rtw::svc::ceil_pow2;
using rtw::svc::MpscRing;
using rtw::svc::Priority;
using rtw::svc::SessionTable;

TEST(CeilPow2, RoundsUp) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
  EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(MpscRing, FifoAcrossManyLaps) {
  MpscRing<std::uint64_t> ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  std::uint64_t next_pop = 0;
  // Interleave pushes and pops so the indices wrap the ring many times:
  // fill to the brim, then drain about half before the next refill.
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{v}));
    if (ring.approx_size() == ring.capacity()) {
      for (int drains = 0; drains < 5; ++drains) {
        std::uint64_t out = 0;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, next_pop++);
      }
    }
  }
  std::uint64_t out = 0;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, FullRingRejectsAndLeavesValueIntact) {
  MpscRing<std::string> ring(4);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(ring.try_push(std::string(1, static_cast<char>('a' + i))));
  std::string overflow = "survivor";
  EXPECT_FALSE(ring.try_push(overflow));
  // The failed push must not have consumed the value: the caller sheds or
  // retries it.
  EXPECT_EQ(overflow, "survivor");
  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(ring.try_push(std::move(overflow)));
  for (const char* want : {"b", "c", "d", "survivor"}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, CapacityRoundsToPowerOfTwo) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  // Two cells minimum: the slot-sequencing scheme cannot distinguish
  // "full" from "writable next lap" on a single cell.
  MpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
  int v = 7;
  EXPECT_TRUE(tiny.try_push(v));
  EXPECT_TRUE(tiny.try_push(v));
  EXPECT_FALSE(tiny.try_push(v));
}

TEST(MpscRing, MoveOnlyPayloads) {
  MpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(41)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 41);
}

TEST(MpscRing, DestructorDrainsUnpoppedElements) {
  const auto counter = std::make_shared<int>(0);
  {
    MpscRing<std::shared_ptr<int>> ring(8);
    for (int i = 0; i < 5; ++i) {
      auto copy = counter;
      ASSERT_TRUE(ring.try_push(std::move(copy)));
    }
    EXPECT_EQ(counter.use_count(), 6);  // 5 in the ring + the local
  }
  EXPECT_EQ(counter.use_count(), 1);  // the ring's destructor released all 5
}

TEST(MpscRing, ApproxSizeIsExactWhenQuiescent) {
  MpscRing<int> ring(16);
  EXPECT_EQ(ring.approx_size(), 0u);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.approx_size(), 10u);
  int out = 0;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.approx_size(), 6u);
}

/// The MPSC contract under contention: P producers each push a tagged
/// monotone sequence (retrying on full), one consumer drains concurrently.
/// Checks exactly-once delivery and per-producer FIFO -- for every
/// producer, items arrive in strictly increasing sequence order.
void stress(unsigned producers, std::size_t capacity,
            std::uint64_t per_producer) {
  MpscRing<std::uint64_t> ring(capacity);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t seq = 0; seq < per_producer; ++seq) {
        std::uint64_t item = (std::uint64_t{p} << 32) | seq;
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(producers, 0);
  std::uint64_t received = 0;
  const std::uint64_t total = per_producer * producers;
  go.store(true, std::memory_order_release);
  while (received < total) {
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const auto producer = static_cast<unsigned>(item >> 32);
    const std::uint64_t seq = item & 0xffffffffu;
    ASSERT_LT(producer, producers);
    // Exactly-once + per-producer FIFO in one check: the next sequence
    // from this producer must be exactly the one we expect.
    ASSERT_EQ(seq, next_seq[producer])
        << "producers=" << producers << " capacity=" << capacity;
    ++next_seq[producer];
    ++received;
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ring.empty());
  for (unsigned p = 0; p < producers; ++p)
    EXPECT_EQ(next_seq[p], per_producer);
}

TEST(MpscRingStress, ProducersByCapacityMatrix) {
  for (const unsigned producers : {1u, 2u, 8u}) {
    for (const std::size_t capacity : {std::size_t{8}, std::size_t{64},
                                       std::size_t{1024}}) {
      // Small rings force constant wraparound and full-ring retries; the
      // per-cell volume keeps the whole matrix fast enough for TSan.
      stress(producers, capacity, 8000 / producers);
    }
  }
}

// ------------------------------------------------------------ SessionTable

TEST(SessionTable, InsertFindErase) {
  SessionTable table(64);
  EXPECT_EQ(table.find(7), nullptr);
  ASSERT_TRUE(table.insert(7, Priority::High));
  auto* slot = table.find(7);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->priority.load(), static_cast<std::uint8_t>(Priority::High));
  slot->inflight.fetch_add(3);
  EXPECT_EQ(table.find(7)->inflight.load(), 3u);
  table.erase(7);
  EXPECT_EQ(table.find(7), nullptr);
}

TEST(SessionTable, ReopenRefreshesPriority) {
  SessionTable table(64);
  ASSERT_TRUE(table.insert(9, Priority::Low));
  ASSERT_TRUE(table.insert(9, Priority::High));  // re-open, same id
  EXPECT_EQ(table.find(9)->priority.load(),
            static_cast<std::uint8_t>(Priority::High));
}

TEST(SessionTable, TombstonesDoNotBreakProbeChains) {
  // With a 4-slot table, ids are forced to collide; erasing one in the
  // middle of a probe chain must leave the others findable.
  SessionTable table(4);
  ASSERT_EQ(table.capacity(), 4u);
  ASSERT_TRUE(table.insert(1, Priority::Normal));
  ASSERT_TRUE(table.insert(2, Priority::Normal));
  ASSERT_TRUE(table.insert(3, Priority::Normal));
  table.erase(2);
  EXPECT_NE(table.find(1), nullptr);
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
  // The tombstone is reusable.
  ASSERT_TRUE(table.insert(4, Priority::High));
  EXPECT_NE(table.find(4), nullptr);
}

TEST(SessionTable, FullTableDegradesToUntracked) {
  SessionTable table(2);
  ASSERT_TRUE(table.insert(1, Priority::Normal));
  ASSERT_TRUE(table.insert(2, Priority::Normal));
  // No room: insert reports failure and the session is simply a hint miss,
  // never an error.
  EXPECT_FALSE(table.insert(3, Priority::High));
  EXPECT_EQ(table.find(3), nullptr);
}

TEST(SessionTable, ReservedIdsAreRejected) {
  SessionTable table(8);
  EXPECT_FALSE(table.insert(0, Priority::Normal));
  EXPECT_FALSE(table.insert(~std::uint64_t{0}, Priority::Normal));
  EXPECT_EQ(table.find(0), nullptr);
  EXPECT_EQ(table.find(~std::uint64_t{0}), nullptr);
}

TEST(SessionTable, ConcurrentInsertFindInflight) {
  SessionTable table(1 << 10);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = 1 + t * kPerThread + i;
        ASSERT_TRUE(table.insert(id, Priority::High));
        auto* slot = table.find(id);
        ASSERT_NE(slot, nullptr);
        slot->inflight.fetch_add(2, std::memory_order_relaxed);
        slot->inflight.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  for (std::uint64_t id = 1; id <= kThreads * kPerThread; ++id) {
    auto* slot = table.find(id);
    ASSERT_NE(slot, nullptr) << "id=" << id;
    EXPECT_EQ(slot->priority.load(), static_cast<std::uint8_t>(Priority::High));
    EXPECT_EQ(slot->inflight.load(), 1u);
  }
}

}  // namespace
