// Tests for finite automata, Buchi/Muller omega-automata (section 2.1) and
// the Theorem 3.1 witness language machinery.

#include <gtest/gtest.h>

#include "rtw/automata/finite_automaton.hpp"
#include "rtw/automata/omega.hpp"
#include "rtw/automata/witness.hpp"
#include "rtw/core/error.hpp"

namespace {

using namespace rtw::automata;
using rtw::core::Symbol;
using rtw::core::symbols_of;

Symbol A() { return Symbol::chr('a'); }
Symbol B() { return Symbol::chr('b'); }

// ------------------------------------------------------ FiniteAutomaton

FiniteAutomaton even_as() {
  // Accepts words over {a,b} with an even number of a's.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, A());
  fa.add_transition(1, 0, A());
  fa.add_transition(0, 0, B());
  fa.add_transition(1, 1, B());
  fa.add_final(0);
  return fa;
}

TEST(FiniteAutomatonTest, AcceptsByFinalState) {
  auto fa = even_as();
  EXPECT_TRUE(fa.accepts(symbols_of("")));
  EXPECT_TRUE(fa.accepts(symbols_of("aa")));
  EXPECT_TRUE(fa.accepts(symbols_of("baba")));
  EXPECT_FALSE(fa.accepts(symbols_of("a")));
  EXPECT_FALSE(fa.accepts(symbols_of("bab")));
}

TEST(FiniteAutomatonTest, DeadInputRejects) {
  FiniteAutomaton fa(1, 0);
  fa.add_final(0);
  EXPECT_TRUE(fa.accepts({}));
  EXPECT_FALSE(fa.accepts(symbols_of("a")));  // no transition on a
}

TEST(FiniteAutomatonTest, NondeterminismExplored) {
  // Accepts words ending in 'a' via a nondeterministic guess.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, A());
  fa.add_transition(0, 0, B());
  fa.add_transition(0, 1, A());
  fa.add_final(1);
  EXPECT_TRUE(fa.accepts(symbols_of("bba")));
  EXPECT_FALSE(fa.accepts(symbols_of("ab")));
}

TEST(FiniteAutomatonTest, LambdaClosure) {
  FiniteAutomaton fa(3, 0);
  fa.add_lambda(0, 1);
  fa.add_lambda(1, 2);
  fa.add_transition(2, 2, A());
  fa.add_final(2);
  EXPECT_TRUE(fa.accepts(symbols_of("")));
  EXPECT_TRUE(fa.accepts(symbols_of("a")));
  const auto closed = fa.closure({0});
  EXPECT_EQ(closed.size(), 3u);
}

TEST(FiniteAutomatonTest, RangeChecks) {
  FiniteAutomaton fa(2, 0);
  EXPECT_THROW(fa.add_transition(0, 5, A()), rtw::core::ModelError);
  EXPECT_THROW(fa.add_lambda(5, 0), rtw::core::ModelError);
  EXPECT_THROW(fa.add_final(9), rtw::core::ModelError);
  EXPECT_THROW(FiniteAutomaton(2, 7), rtw::core::ModelError);
}

// ---------------------------------------------------------- OmegaWord

TEST(OmegaWordTest, LassoIndexing) {
  auto w = omega_word("xy", "ab");
  EXPECT_EQ(w.at(0), Symbol::chr('x'));
  EXPECT_EQ(w.at(2), A());
  EXPECT_EQ(w.at(3), B());
  EXPECT_EQ(w.at(4), A());
  EXPECT_EQ(rtw::core::to_string(w.unroll(6)), "xyabab");
}

TEST(OmegaWordTest, EmptyCycleThrows) {
  EXPECT_THROW(omega_word("x", ""), rtw::core::ModelError);
}

// -------------------------------------------------------------- Buchi

BuchiAutomaton infinitely_many_as() {
  // Accepts omega-words over {a,b} with infinitely many a's.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, B());
  fa.add_transition(0, 1, A());
  fa.add_transition(1, 0, B());
  fa.add_transition(1, 1, A());
  fa.add_final(1);
  return BuchiAutomaton(std::move(fa));
}

TEST(BuchiTest, InfinitelyManyAs) {
  auto buchi = infinitely_many_as();
  EXPECT_TRUE(buchi.accepts(omega_word("", "a")));
  EXPECT_TRUE(buchi.accepts(omega_word("bbb", "ab")));
  EXPECT_FALSE(buchi.accepts(omega_word("aaaa", "b")));
  EXPECT_FALSE(buchi.accepts(omega_word("", "b")));
}

TEST(BuchiTest, DeadRunRejects) {
  FiniteAutomaton fa(1, 0);
  fa.add_transition(0, 0, A());
  fa.add_final(0);
  BuchiAutomaton buchi(std::move(fa));
  EXPECT_TRUE(buchi.accepts(omega_word("", "a")));
  EXPECT_FALSE(buchi.accepts(omega_word("", "ab")));  // dies on b
  EXPECT_FALSE(buchi.accepts(omega_word("b", "a")));  // dies in prefix
}

TEST(BuchiTest, FinalOnlyInPrefixRejects) {
  // Final state reachable only during the prefix -> not in inf(r).
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, A());
  fa.add_transition(1, 1, B());
  fa.add_final(0);
  BuchiAutomaton buchi(std::move(fa));
  EXPECT_FALSE(buchi.accepts(omega_word("a", "b")));
}

// -------------------------------------------------------------- Muller

TEST(MullerTest, AcceptsExactInfSet) {
  // Deterministic automaton over {a,b}: state tracks last symbol.
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, A());
  fa.add_transition(0, 1, B());
  fa.add_transition(1, 0, A());
  fa.add_transition(1, 1, B());
  // Accept exactly runs that visit both states infinitely often.
  MullerAutomaton muller(std::move(fa), {{0, 1}});
  EXPECT_TRUE(muller.accepts(omega_word("", "ab")));
  EXPECT_FALSE(muller.accepts(omega_word("", "a")));   // inf = {0}
  EXPECT_FALSE(muller.accepts(omega_word("ab", "b"))); // inf = {1}
}

TEST(MullerTest, InfComputation) {
  FiniteAutomaton fa(3, 0);
  fa.add_transition(0, 1, A());
  fa.add_transition(1, 2, A());
  fa.add_transition(2, 1, A());
  MullerAutomaton muller(std::move(fa), {{1, 2}});
  EXPECT_EQ(muller.inf(omega_word("", "a")), (std::set<State>{1, 2}));
  EXPECT_TRUE(muller.accepts(omega_word("", "a")));
}

TEST(MullerTest, DeadRunHasEmptyInf) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 1, A());
  MullerAutomaton muller(std::move(fa), {{1}});
  EXPECT_TRUE(muller.inf(omega_word("", "a")).empty());
  EXPECT_FALSE(muller.accepts(omega_word("", "a")));
}

TEST(MullerTest, NondeterminismRejectedAtConstruction) {
  FiniteAutomaton fa(2, 0);
  fa.add_transition(0, 0, A());
  fa.add_transition(0, 1, A());
  EXPECT_THROW(MullerAutomaton(std::move(fa), {}), rtw::core::ModelError);
}

// ---------------------------------------------------- Theorem 3.1 witness

TEST(WitnessTest, BlockLanguageMembership) {
  EXPECT_TRUE(in_block_language("abcd"));
  EXPECT_TRUE(in_block_language("aabbbccdddd") ==
              false);  // 3 b's vs 4 d's
  EXPECT_TRUE(in_block_language("aabbbccddd"));
  EXPECT_FALSE(in_block_language(""));
  EXPECT_FALSE(in_block_language("bcd"));    // u = 0
  EXPECT_FALSE(in_block_language("acd"));    // x = 0
  EXPECT_FALSE(in_block_language("abd"));    // v = 0
  EXPECT_FALSE(in_block_language("abc"));    // d-run missing
  EXPECT_FALSE(in_block_language("abcda"));  // trailing junk
}

TEST(WitnessTest, BlockWordBuilder) {
  EXPECT_EQ(block_word(2, 3, 1), "aabbbcddd");
  EXPECT_TRUE(in_block_language(block_word(5, 7, 2)));
}

TEST(WitnessTest, LOmegaMembership) {
  EXPECT_TRUE(in_l_omega(l_omega_member(1, 1, 1)));
  EXPECT_TRUE(in_l_omega(l_omega_member(2, 5, 3)));
  // Mismatched d-run in the repeated block.
  EXPECT_FALSE(in_l_omega(omega_word("", "abbcd$")));
  // No separators at all in the cycle.
  EXPECT_FALSE(in_l_omega(omega_word("abcd$", "a")));
}

TEST(WitnessTest, RefuterFindsCounterexampleForSmallBuchi) {
  // Any small Buchi automaton must misclassify some probe: here, one that
  // accepts everything (a single accepting sink with self-loops).
  FiniteAutomaton fa(1, 0);
  for (char c : {'a', 'b', 'c', 'd', '$'})
    fa.add_transition(0, 0, Symbol::chr(c));
  fa.add_final(0);
  BuchiAutomaton accept_everything(std::move(fa));
  const auto ce = refute_buchi_candidate(accept_everything, 8);
  ASSERT_TRUE(ce.has_value());
  EXPECT_TRUE(ce->automaton_accepts);
  EXPECT_FALSE(ce->in_language);
  EXPECT_FALSE(ce->describe().empty());
}

TEST(WitnessTest, RefuterFindsCounterexampleForRejectAll) {
  FiniteAutomaton fa(1, 0);
  for (char c : {'a', 'b', 'c', 'd', '$'})
    fa.add_transition(0, 0, Symbol::chr(c));
  // no final states
  BuchiAutomaton reject_everything(std::move(fa));
  const auto ce = refute_buchi_candidate(reject_everything, 8);
  ASSERT_TRUE(ce.has_value());
  EXPECT_FALSE(ce->automaton_accepts);
  EXPECT_TRUE(ce->in_language);
}

TEST(WitnessTest, Theorem31ExtractionBuildsPrime) {
  FiniteAutomaton fa(1, 0);
  for (char c : {'a', 'b', 'c', 'd', '$'})
    fa.add_transition(0, 0, Symbol::chr(c));
  fa.add_final(0);
  BuchiAutomaton candidate(std::move(fa));
  const auto sample = l_omega_member(1, 2, 1);
  const auto prime = theorem31_extract(candidate, sample, 3);
  // A' accepts the block language members the sample exercised...
  EXPECT_TRUE(prime.accepts(symbols_of(block_word(1, 2, 1))));
  // ...but (being finite-state over a unary-counting language) also accepts
  // corrupted blocks -- the concrete contradiction of Theorem 3.1.
  EXPECT_TRUE(prime.accepts(symbols_of("abbcd")));
  EXPECT_FALSE(in_block_language("abbcd"));
}

// Property sweep: the refuter succeeds on a family of random-ish automata
// over the witness alphabet.
class RefuterProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RefuterProperty, EveryCandidateFails) {
  const unsigned states = GetParam();
  // A "counting ladder" automaton: counts b's modulo `states` and insists
  // d-runs match modulo the state count -- the best a finite automaton can
  // do, still refutable with x > states.
  FiniteAutomaton fa(states, 0);
  for (unsigned s = 0; s < states; ++s) {
    fa.add_transition(s, s, Symbol::chr('a'));
    fa.add_transition(s, s, Symbol::chr('c'));
    fa.add_transition(s, (s + 1) % states, Symbol::chr('b'));
    fa.add_transition(s, (s + states - 1) % states, Symbol::chr('d'));
    fa.add_transition(s, s, Symbol::chr('$'));
  }
  fa.add_final(0);
  BuchiAutomaton candidate(std::move(fa));
  const auto ce = refute_buchi_candidate(candidate, states + 4);
  EXPECT_TRUE(ce.has_value()) << "states=" << states;
}

INSTANTIATE_TEST_SUITE_P(Ladders, RefuterProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
