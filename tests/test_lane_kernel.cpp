// The batch acceptance lane suite: every kernel variant must be
// *bit-identical* to the per-symbol reference path.
//
//   1. Runtime dispatch: the pure variant-selection function and the
//      layout probe the gathers rely on.
//   2. DeadlineLaneAcceptor vs the engine replica: 500 seeded cases of
//      proper and mutated deadline words, verdict compared after every
//      feed and the full RunResult at finish, across both fast-forward
//      modes and both stream ends.
//   3. The variant matrix: scalar / SSE2 / AVX2 steppers advance a fleet
//      of lanes wave by wave against per-symbol reference sessions
//      (EngineOnlineAcceptor under Session::feed_run), with stale
//      injections -- verdicts, stale counters and final reports must all
//      match on every variant the machine can run.
//   4. The serving-layer property: a SessionManager with the lane kernel
//      on, fed batched runs over the tri-workload mix (deadline / rtdb /
//      adhoc) at 1 and 2 shards, produces field-identical reports to a
//      per-symbol reference manager (500 seeded cases).
//   5. The Session::feed_run settled-session fast path keeps the stale
//      filter exactly equivalent to per-symbol feeding.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "proptest.hpp"
#include "rtw/adhoc/mobility.hpp"
#include "rtw/adhoc/route_acceptor.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/core/lane.hpp"
#include "rtw/core/online.hpp"
#include "rtw/deadline/lane.hpp"
#include "rtw/deadline/online.hpp"
#include "rtw/deadline/problem.hpp"
#include "rtw/deadline/word.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/svc/service.hpp"
#include "rtw/svc/session.hpp"

namespace {

using namespace rtw::core;
using rtw::deadline::DeadlineInstance;
using rtw::deadline::DeadlineLaneAcceptor;
using rtw::deadline::make_lane_acceptor;
using rtw::deadline::Usefulness;
using rtw::svc::Admit;
using rtw::svc::Session;
using rtw::svc::SessionManager;


// ====================================== 1. dispatch and layout probes

TEST(KernelDispatch, EnvOverrideForcesScalar) {
  EXPECT_EQ(detect_variant("1"), KernelVariant::Scalar);
  EXPECT_EQ(detect_variant("yes"), KernelVariant::Scalar);
  // "0" and "" mean unset, same as a missing variable.
  EXPECT_EQ(detect_variant("0"), detect_variant(nullptr));
  EXPECT_EQ(detect_variant(""), detect_variant(nullptr));
}

TEST(KernelDispatch, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(variant_supported(KernelVariant::Scalar));
  // Whatever dispatch picked must be runnable here.
  EXPECT_TRUE(variant_supported(dispatch_variant()));
  EXPECT_TRUE(variant_supported(detect_variant(nullptr)));
}

TEST(KernelDispatch, SteppersClampToRunnableVariants) {
  for (const auto requested :
       {KernelVariant::Scalar, KernelVariant::SSE2, KernelVariant::AVX2}) {
    const auto stepper = rtw::deadline::make_deadline_stepper(requested);
    ASSERT_NE(stepper, nullptr);
    EXPECT_EQ(stepper->family(), LaneFamily::Deadline);
    EXPECT_TRUE(variant_supported(stepper->variant()));
  }
  // Scalar requests are honored verbatim (the forced-scalar runtime path).
  EXPECT_EQ(
      rtw::deadline::make_deadline_stepper(KernelVariant::Scalar)->variant(),
      KernelVariant::Scalar);
}

TEST(KernelDispatch, LayoutProbeMatchesRawLoads) {
  EXPECT_TRUE(rtw::deadline::lane_layout_ok());
  const TimedSymbol d{marks::deadline(), 7};
  EXPECT_EQ(rtw::deadline::lane_raw_kind(d),
            rtw::deadline::kLaneKindMarker);
  EXPECT_EQ(rtw::deadline::lane_raw_value(d),
            rtw::deadline::deadline_marker_id());
  const TimedSymbol n{Symbol::nat(41), 7};
  EXPECT_EQ(rtw::deadline::lane_raw_kind(n), rtw::deadline::kLaneKindNat);
  EXPECT_EQ(rtw::deadline::lane_raw_value(n), 41u);
}

// =========================== 2. lane acceptor vs engine replica property

/// The visible prefix of `word` within `horizon` plus how it ends.
struct StreamPrefix {
  std::vector<TimedSymbol> symbols;
  StreamEnd end = StreamEnd::Truncated;
};

StreamPrefix stream_prefix(const TimedWord& word, Tick horizon,
                           std::uint64_t cap = 200000) {
  StreamPrefix out;
  auto cursor = word.cursor();
  for (std::uint64_t i = 0; i < cap; ++i) {
    if (cursor.done()) {
      out.end = StreamEnd::EndOfWord;
      return out;
    }
    const auto ts = cursor.current();
    if (ts.time > horizon) return out;
    out.symbols.push_back(ts);
    cursor.advance();
  }
  ADD_FAILURE() << "stream_prefix cap hit (horizon too large for the test)";
  return out;
}

std::string render(const RunResult& r) {
  std::ostringstream out;
  out << "accepted=" << r.accepted << " exact=" << r.exact
      << " ticks=" << r.ticks << " f_count=" << r.f_count << " first_f="
      << (r.first_f ? std::to_string(*r.first_f) : std::string("-"))
      << " consumed=" << r.symbols_consumed;
  return out.str();
}

std::optional<std::string> result_violation(const RunResult& lane,
                                            const RunResult& reference) {
  if (lane.accepted != reference.accepted || lane.exact != reference.exact ||
      lane.ticks != reference.ticks || lane.f_count != reference.f_count ||
      lane.first_f != reference.first_f ||
      lane.symbols_consumed != reference.symbols_consumed)
    return "RunResult mismatch: lane{" + render(lane) + "} engine{" +
           render(reference) + "}";
  return std::nullopt;
}

/// One generated deadline stream: a section 4.1 word (proper or mutated),
/// run options, and where to cut it.
struct DeadlineStream {
  std::vector<TimedSymbol> symbols;
  StreamEnd end = StreamEnd::Truncated;
  std::shared_ptr<const rtw::deadline::Problem> problem;
  RunOptions options;
};

std::shared_ptr<const rtw::deadline::Problem> random_problem(
    rtw::sim::Xoshiro256ss& rng) {
  switch (rng.uniform(std::uint64_t{3})) {
    case 0: return std::make_shared<rtw::deadline::SortProblem>();
    case 1:
      return std::make_shared<rtw::deadline::FixedCostProblem>(
          1 + rng.uniform(std::uint64_t{40}));
    default: return std::make_shared<rtw::deadline::ReverseProblem>();
  }
}

DeadlineStream deadline_stream(rtw::sim::Xoshiro256ss& rng,
                               std::size_t size) {
  DeadlineInstance inst;
  const auto in_len = 1 + rng.uniform(std::uint64_t{1 + size / 4});
  for (std::uint64_t i = 0; i < in_len; ++i)
    inst.input.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));

  DeadlineStream s;
  s.problem = random_problem(rng);
  if (rng.bernoulli(0.7)) {
    inst.proposed_output = s.problem->solve(inst.input);
  } else {
    const auto out_len = 1 + rng.uniform(std::uint64_t{4});
    for (std::uint64_t i = 0; i < out_len; ++i)
      inst.proposed_output.push_back(
          Symbol::nat(rng.uniform(std::uint64_t{9})));
  }
  if (rng.bernoulli(0.6)) {
    inst.usefulness = Usefulness::firm(3 + rng.uniform(std::uint64_t{40}), 10);
    inst.min_acceptable = rng.uniform(std::uint64_t{10});
  } else {
    inst.usefulness = Usefulness::none(10);
  }

  s.options.horizon = 60 + rng.uniform(std::uint64_t{200});
  s.options.fast_forward = rng.bernoulli(0.85);
  auto prefix =
      stream_prefix(rtw::deadline::build_deadline_word(inst),
                    s.options.horizon);
  s.symbols = std::move(prefix.symbols);
  s.end = prefix.end;

  // Mutations (the acceptor must handle arbitrary monotone streams, not
  // just proper instance words): inject extra symbols at in-range times,
  // and sometimes abandon the stream early.
  if (rng.bernoulli(0.4) && !s.symbols.empty()) {
    const auto injections = 1 + rng.uniform(std::uint64_t{5});
    for (std::uint64_t i = 0; i < injections; ++i) {
      const auto at = rng.uniform(std::uint64_t{s.symbols.size()});
      Symbol sym = Symbol::chr('w');
      switch (rng.uniform(std::uint64_t{4})) {
        case 0: sym = Symbol::nat(rng.uniform(std::uint64_t{12})); break;
        case 1: sym = marks::deadline(); break;
        case 2: sym = marks::dollar(); break;
        default: break;
      }
      s.symbols.insert(s.symbols.begin() + static_cast<std::ptrdiff_t>(at),
                       TimedSymbol{sym, s.symbols[at].time});
    }
  }
  if (rng.bernoulli(0.25) && !s.symbols.empty()) {
    s.symbols.resize(1 + rng.uniform(std::uint64_t{s.symbols.size()}));
    s.end = rng.bernoulli(0.5) ? StreamEnd::Truncated : StreamEnd::EndOfWord;
  }
  return s;
}

/// Feeds the same stream through the lane acceptor and the engine replica,
/// comparing the verdict after *every* element and the full RunResult at
/// finish.  This is the per-element bit-identity contract of
/// rtw/core/lane.hpp, proven over the compressed automaton's whole
/// transition table by 500 seeded cases.
std::optional<std::string> lane_vs_engine(rtw::sim::Xoshiro256ss& rng,
                                          std::size_t size) {
  const auto s = deadline_stream(rng, size);
  const auto lane = make_lane_acceptor(s.problem, s.options);
  const auto engine =
      rtw::deadline::make_online_acceptor(s.problem, s.options);
  for (std::size_t i = 0; i < s.symbols.size(); ++i) {
    const auto vl = lane->feed(s.symbols[i]);
    const auto ve = engine->feed(s.symbols[i]);
    if (vl != ve)
      return "verdict diverged at element " + std::to_string(i) + ": lane=" +
             to_string(vl) + " engine=" + to_string(ve);
  }
  const auto vl = lane->finish(s.end);
  const auto ve = engine->finish(s.end);
  if (vl != ve)
    return "finish verdict diverged: lane=" + to_string(vl) +
           " engine=" + to_string(ve);
  return result_violation(lane->result(), engine->result());
}

TEST(LaneAcceptor, FiveHundredSeededCasesMatchEngineReplica) {
  rtw::proptest::Config cfg;
  cfg.seed = 0x6c616e65ULL;  // "lane"
  cfg.cases = 500;
  cfg.max_size = 32;
  const auto result =
      rtw::proptest::run_property("lane.acceptor_vs_engine", cfg,
                                  lane_vs_engine);
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "lane.acceptor_vs_engine", cfg, *result.failure);
}

TEST(LaneAcceptor, PromotesOnlyWithFastForward) {
  const auto problem = std::make_shared<rtw::deadline::FixedCostProblem>(50);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(3)};
  inst.proposed_output = problem->solve(inst.input);
  RunOptions options;
  options.horizon = 1000;

  for (const bool fast_forward : {true, false}) {
    options.fast_forward = fast_forward;
    DeadlineLaneAcceptor acceptor(problem, options);
    const auto prefix =
        stream_prefix(rtw::deadline::build_deadline_word(inst), 10);
    for (const auto& ts : prefix.symbols) acceptor.feed(ts);
    EXPECT_EQ(acceptor.hot(), fast_forward);
    EXPECT_EQ(acceptor.lane_state() != nullptr, fast_forward);
  }
}

TEST(LaneAcceptor, ResetReturnsToColdPhase) {
  const auto problem = std::make_shared<rtw::deadline::FixedCostProblem>(50);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(3)};
  inst.proposed_output = problem->solve(inst.input);
  DeadlineLaneAcceptor acceptor(problem, RunOptions{});
  const auto prefix =
      stream_prefix(rtw::deadline::build_deadline_word(inst), 10);
  for (const auto& ts : prefix.symbols) acceptor.feed(ts);
  ASSERT_TRUE(acceptor.hot());
  acceptor.reset();
  EXPECT_FALSE(acceptor.hot());
  EXPECT_EQ(acceptor.verdict(), Verdict::Undetermined);
  for (const auto& ts : prefix.symbols) acceptor.feed(ts);
  EXPECT_TRUE(acceptor.hot());
}

// ============================================== 3. the variant matrix

/// One lane under test: a lane-acceptor session stepped by the kernel,
/// twinned with an engine-acceptor session fed per element.
struct LanePair {
  std::unique_ptr<Session> lane;
  std::unique_ptr<Session> reference;
  Tick clock = 3;  ///< next in-order timestamp (the header run fed up to 2)
};

/// Drives `variant` against the per-symbol reference across a fleet of
/// lanes (odd count, so SIMD waves always leave remainder lanes) with
/// stale injections, comparing verdicts and filter counters after every
/// wave and the terminal reports at close.
void run_variant_matrix(KernelVariant variant, std::uint64_t seed) {
  const auto stepper = rtw::deadline::make_deadline_stepper(variant);
  ASSERT_NE(stepper, nullptr);
  if (stepper->variant() != variant)
    GTEST_SKIP() << "variant " << to_string(variant)
                 << " not runnable on this build/CPU (clamped to "
                 << to_string(stepper->variant()) << ")";

  rtw::sim::Xoshiro256ss rng(seed);
  constexpr std::size_t kLanes = 37;
  constexpr Tick kHorizon = 600;
  std::vector<LanePair> pairs;
  for (std::size_t i = 0; i < kLanes; ++i) {
    // A spread of completion ticks: some lanes lock mid-test, some end at
    // the horizon, some stay live throughout.
    const auto problem = std::make_shared<rtw::deadline::FixedCostProblem>(
        20 + 40 * (i % 16));
    DeadlineInstance inst;
    inst.input = {Symbol::nat(i % 7)};
    if (i % 3 == 0) {
      inst.proposed_output = {Symbol::nat(99)};  // wrong: reject-locks
    } else {
      inst.proposed_output = problem->solve(inst.input);
    }
    if (i % 2 == 0) {
      inst.usefulness = Usefulness::firm(30 + 20 * (i % 8), 10);
      inst.min_acceptable = i % 5;
    } else {
      inst.usefulness = Usefulness::none(10);
    }
    RunOptions options;
    options.horizon = kHorizon;
    LanePair pair;
    pair.lane = std::make_unique<Session>(
        i, make_lane_acceptor(problem, options));
    pair.reference = std::make_unique<Session>(
        i, rtw::deadline::make_online_acceptor(problem, options));

    // The header run promotes the lane acceptor through its cold phase.
    // It must reach past time 0: tick 0 only becomes emulable (and the
    // algorithm Working) once a strictly newer element arrives.
    const auto header =
        stream_prefix(rtw::deadline::build_deadline_word(inst), 2);
    pair.lane->feed_run(header.symbols.data(), header.symbols.size());
    pair.reference->feed_run(header.symbols.data(), header.symbols.size());
    pairs.push_back(std::move(pair));
  }
  for (auto& pair : pairs)
    ASSERT_NE(pair.lane->acceptor().lane_state(), nullptr)
        << "header run failed to promote lane " << pair.lane->id();

  for (int wave = 0; wave < 60; ++wave) {
    std::vector<std::vector<TimedSymbol>> runs(kLanes);
    std::vector<LaneRun> lane_runs;
    for (std::size_t i = 0; i < kLanes; ++i) {
      auto& pair = pairs[i];
      const auto len = rng.uniform(std::uint64_t{9});  // may be empty
      for (std::uint64_t j = 0; j < len; ++j) {
        Tick at = pair.clock;
        if (rng.bernoulli(0.15) && pair.clock > 2) {
          at = pair.clock - 1 - rng.uniform(std::uint64_t{2});  // stale
        } else {
          pair.clock += rng.uniform(std::uint64_t{3});
          at = pair.clock;
        }
        Symbol sym = Symbol::chr('w');
        switch (rng.uniform(std::uint64_t{5})) {
          case 0: sym = Symbol::nat(rng.uniform(std::uint64_t{9})); break;
          case 1: sym = marks::deadline(); break;
          case 2: sym = marks::dollar(); break;
          default: break;
        }
        runs[i].push_back(TimedSymbol{sym, at});
      }
      lane_runs.push_back(LaneRun{runs[i].data(), runs[i].size(),
                                  &pair.lane->lane_filter(),
                                  pair.lane->acceptor().lane_state()});
      pair.reference->feed_run(runs[i].data(), runs[i].size());
    }
    stepper->step(lane_runs.data(), lane_runs.size());
    for (std::size_t i = 0; i < kLanes; ++i) {
      ASSERT_EQ(pairs[i].lane->verdict(), pairs[i].reference->verdict())
          << "lane " << i << " wave " << wave << " variant "
          << to_string(variant);
      ASSERT_EQ(pairs[i].lane->fed(), pairs[i].reference->fed())
          << "lane " << i << " wave " << wave;
      ASSERT_EQ(pairs[i].lane->stale_dropped(),
                pairs[i].reference->stale_dropped())
          << "lane " << i << " wave " << wave;
    }
  }

  for (std::size_t i = 0; i < kLanes; ++i) {
    const auto end =
        i % 2 == 0 ? StreamEnd::EndOfWord : StreamEnd::Truncated;
    ASSERT_EQ(pairs[i].lane->finish(end), pairs[i].reference->finish(end))
        << "lane " << i;
    const auto a = pairs[i].lane->report(false);
    const auto b = pairs[i].reference->report(false);
    EXPECT_EQ(a.verdict, b.verdict) << "lane " << i;
    EXPECT_EQ(a.fed, b.fed) << "lane " << i;
    EXPECT_EQ(a.stale_dropped, b.stale_dropped) << "lane " << i;
    const auto violation = result_violation(a.result, b.result);
    EXPECT_EQ(violation, std::nullopt) << "lane " << i << ": " << *violation;
  }
}

TEST(VariantMatrix, ScalarMatchesPerSymbolReference) {
  run_variant_matrix(KernelVariant::Scalar, 0x736c6172ULL);
}

TEST(VariantMatrix, Sse2MatchesPerSymbolReference) {
  run_variant_matrix(KernelVariant::SSE2, 0x73736532ULL);
}

TEST(VariantMatrix, Avx2MatchesPerSymbolReference) {
  run_variant_matrix(KernelVariant::AVX2, 0x61767832ULL);
}

// ==================================== 4. the serving-layer property

/// One generated tri-workload case: factories for the reference acceptor
/// (always the engine replica) and the serving acceptor (the lane acceptor
/// for the deadline family; identical for foreign families, which must take
/// the per-symbol fallback inside the manager).
struct ManagedCase {
  std::function<std::unique_ptr<OnlineAcceptor>()> make_reference;
  std::function<std::unique_ptr<OnlineAcceptor>()> make_served;
  std::vector<TimedSymbol> symbols;
  StreamEnd end = StreamEnd::Truncated;
};

ManagedCase managed_deadline(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  const auto s = deadline_stream(rng, size);
  ManagedCase c;
  c.symbols = s.symbols;
  c.end = s.end;
  const auto problem = s.problem;
  const auto options = s.options;
  c.make_reference = [problem, options] {
    return rtw::deadline::make_online_acceptor(problem, options);
  };
  c.make_served = [problem, options] {
    return make_lane_acceptor(problem, options);
  };
  return c;
}

rtw::rtdb::QueryCatalog image_catalog() {
  rtw::rtdb::QueryCatalog catalog;
  catalog.add(rtw::rtdb::Query("all-images", [](const rtw::rtdb::Database& db) {
    return rtw::rtdb::project(
        rtw::rtdb::select_eq(db.get("Objects"), "Kind",
                             rtw::rtdb::Value{std::string("image")}),
        {"Name"});
  }));
  return catalog;
}

ManagedCase managed_rtdb(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  using namespace rtw::rtdb;
  RtdbWordSpec spec;
  spec.invariants = {{"site", Value{std::string("plant")}}};
  const auto images = 1 + rng.uniform(std::uint64_t{1 + size / 12});
  for (std::uint64_t i = 0; i < images; ++i)
    spec.images.push_back({"s" + std::to_string(i),
                           2 + rng.uniform(std::uint64_t{4}), [i](Tick t) {
                             return Value{static_cast<std::int64_t>(
                                 10 * i + t % 5)};
                           }});
  AperiodicQuerySpec q;
  q.query = "all-images";
  q.candidate = {Value{std::string(rng.bernoulli(0.6) ? "s0" : "nope")}};
  q.issue_time = 5 + rng.uniform(std::uint64_t{30});
  if (rng.bernoulli(0.7)) {
    q.usefulness = Usefulness::firm(2 + rng.uniform(std::uint64_t{30}), 10);
    q.min_acceptable = 1;
  } else {
    q.usefulness = Usefulness::none(10);
  }
  const auto word = rtw::core::concat(build_dbB(spec), build_aq(q));

  ManagedCase c;
  RunOptions options;
  options.horizon = 150 + rng.uniform(std::uint64_t{150});
  options.fast_forward = rng.bernoulli(0.8);
  const auto prefix = stream_prefix(word, options.horizon);
  c.symbols = prefix.symbols;
  c.end = prefix.end;
  const Tick patience = 64;
  c.make_reference = [options, patience] {
    return make_online_recognition(image_catalog(), linear_cost(), patience,
                                   options);
  };
  c.make_served = c.make_reference;
  return c;
}

ManagedCase managed_adhoc(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  using namespace rtw::adhoc;
  const auto n =
      static_cast<NodeId>(3 + rng.uniform(std::uint64_t{1 + size / 8}));
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (NodeId i = 0; i < n; ++i)
    nodes.push_back(std::make_unique<Stationary>(Vec2{10.0 * i, 0.0}));
  auto net = std::make_shared<const Network>(std::move(nodes), 12.0);

  RouteTrace trace;
  trace.source = 0;
  trace.destination = n - 1;
  trace.body = 100 + rng.uniform(std::uint64_t{900});
  trace.originated_at = 2 + rng.uniform(std::uint64_t{10});
  Tick t = trace.originated_at;
  for (NodeId i = 0; i + 1 < n; ++i) {
    trace.hops.push_back({t, t + 1, i, static_cast<NodeId>(i + 1),
                          trace.body});
    t += 1;
  }
  trace.delivered = true;
  if (rng.bernoulli(0.5) && !trace.hops.empty()) {
    trace.hops.pop_back();
    trace.delivered = false;
  }

  RouteQuery query{0, static_cast<NodeId>(n - 1), trace.body,
                   trace.originated_at};
  ManagedCase c;
  RunOptions options;
  options.horizon = 60 + rng.uniform(std::uint64_t{80});
  options.fast_forward = rng.bernoulli(0.8);
  const auto prefix =
      stream_prefix(route_instance_word(trace, *net), options.horizon);
  c.symbols = prefix.symbols;
  c.end = prefix.end;
  c.make_reference = [net, query, options] {
    return make_online_route_acceptor(net, query, options);
  };
  c.make_served = c.make_reference;
  return c;
}

/// The lane kernel must be invisible to verdicts: the same tri-workload
/// streams, admitted as batched runs into a manager with the kernel on and
/// fed per symbol into a reference manager with the kernel off, at 1 and 2
/// shards, must produce field-identical reports.
TEST(ManagedLaneEquivalence, FiveHundredTriWorkloadCasesAcrossShardCounts) {
  rtw::svc::IngressConfig ingress;
  ingress.ring_capacity = 1 << 13;  // the workload never sheds
  rtw::svc::ShardConfig reference_shard;
  reference_shard.lane_kernel = false;
  rtw::svc::ShardConfig lane_shard;
  lane_shard.lane_kernel = true;
  lane_shard.lane_wave = 8;  // small waves: exercise mid-batch flushes

  reference_shard.count = 1;
  lane_shard.count = 1;
  SessionManager reference_1(reference_shard, ingress),
      lane_1(lane_shard, ingress);
  reference_shard.count = 2;
  lane_shard.count = 2;
  SessionManager reference_2(reference_shard, ingress),
      lane_2(lane_shard, ingress);

  rtw::proptest::Config cfg;
  cfg.seed = 0x77617665ULL;  // "wave"
  cfg.cases = 500;
  cfg.max_size = 24;
  const auto result = rtw::proptest::run_property(
      "svc.lane_kernel_equivalence", cfg,
      [&](rtw::sim::Xoshiro256ss& rng,
          std::size_t size) -> std::optional<std::string> {
        ManagedCase c;
        switch (rng.uniform(std::uint64_t{3})) {
          case 0: c = managed_deadline(rng, size); break;
          case 1: c = managed_rtdb(rng, size); break;
          default: c = managed_adhoc(rng, size); break;
        }
        const bool two_shards = rng.bernoulli(0.5);
        SessionManager& ref = two_shards ? reference_2 : reference_1;
        SessionManager& lan = two_shards ? lane_2 : lane_1;
        const auto id_ref = ref.open(c.make_reference());
        const auto id_lan = lan.open(c.make_served());

        for (const auto& ts : c.symbols)
          if (ref.feed(id_ref, ts.sym, ts.time) != Admit::Accepted)
            return "reference feed not accepted";
        std::size_t off = 0;
        while (off < c.symbols.size()) {
          const std::size_t len =
              std::min<std::size_t>(c.symbols.size() - off,
                                    1 + rng.uniform(std::uint64_t{16}));
          if (lan.feed_batch(id_lan,
                             {c.symbols.begin() + off,
                              c.symbols.begin() + off + len}) !=
              Admit::Accepted)
            return "lane-manager feed not accepted";
          off += len;
        }

        ref.close(id_ref, c.end);
        lan.close(id_lan, c.end);
        ref.drain();
        lan.drain();
        const auto r_ref = ref.collect();
        const auto r_lan = lan.collect();
        if (r_ref.size() != 1 || r_lan.size() != 1)
          return "expected exactly one report per manager";
        const auto& a = r_lan[0];
        const auto& b = r_ref[0];
        if (a.verdict != b.verdict)
          return "verdict mismatch: lane=" + to_string(a.verdict) +
                 " reference=" + to_string(b.verdict);
        if (a.fed != b.fed || a.stale_dropped != b.stale_dropped)
          return "filter counters diverged";
        return result_violation(a.result, b.result);
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "svc.lane_kernel_equivalence", cfg, *result.failure);

  // The lane manager actually used the kernel (deadline cases are a third
  // of the mix; each feeds at least one batched run).
  EXPECT_GT(lane_1.stats().lane_waves + lane_2.stats().lane_waves, 0u);
  EXPECT_GT(lane_1.stats().lane_symbols + lane_2.stats().lane_symbols, 0u);
  EXPECT_EQ(reference_1.stats().lane_waves, 0u);
  EXPECT_EQ(reference_2.stats().lane_waves, 0u);
}

// ==================== 5. Session::feed_run settled-session fast path

TEST(SessionFeedRun, SettledFastPathKeepsFilterEquivalence) {
  // A zero-cost problem locks on the first post-header tick, so both
  // sessions settle early and the remaining stream exercises the
  // settled-session path (no virtual feeds, filter still counts).
  const auto problem = std::make_shared<rtw::deadline::FixedCostProblem>(1);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(3)};
  inst.proposed_output = problem->solve(inst.input);
  RunOptions options;
  options.horizon = 1000;
  options.fast_forward = false;  // engine path on both sessions

  Session batched(1, rtw::deadline::make_online_acceptor(problem, options));
  Session per_symbol(2,
                     rtw::deadline::make_online_acceptor(problem, options));

  auto prefix = stream_prefix(rtw::deadline::build_deadline_word(inst), 40);
  // Stale injections after the lock: timestamps below the high-water mark.
  for (Tick t = 5; t < 15; ++t)
    prefix.symbols.push_back(TimedSymbol{Symbol::chr('w'), t});

  batched.feed_run(prefix.symbols.data(), prefix.symbols.size());
  for (const auto& ts : prefix.symbols) per_symbol.feed(ts.sym, ts.time);

  EXPECT_TRUE(final_verdict(batched.verdict()));
  EXPECT_EQ(batched.verdict(), per_symbol.verdict());
  EXPECT_EQ(batched.fed(), per_symbol.fed());
  EXPECT_EQ(batched.stale_dropped(), per_symbol.stale_dropped());
  EXPECT_GT(batched.stale_dropped(), 0u);
}

}  // namespace
