// Tests for section 4.2: arrival laws, d-algorithm/c-algorithm executors,
// the termination fixed point, the word builder and the acceptor.

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/dataacc/acceptor.hpp"
#include "rtw/dataacc/arrival_law.hpp"
#include "rtw/dataacc/corrections.hpp"
#include "rtw/dataacc/d_algorithm.hpp"
#include "rtw/dataacc/stream_problem.hpp"
#include "rtw/dataacc/word.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::dataacc;
using rtw::core::Certificate;
using rtw::core::Symbol;

Symbol datum_mod7(std::uint64_t j) { return Symbol::nat(j % 7); }

// ------------------------------------------------------------ ArrivalLaw

TEST(ArrivalLawTest, CountMatchesFormula) {
  // f(n,t) = n + k n^gamma t^beta with n=4, k=2, gamma=1, beta=1:
  // f = 4 + 8t.
  ArrivalLaw law(4, 2.0, 1.0, 1.0);
  EXPECT_EQ(law.count_at(0), 4u);
  EXPECT_EQ(law.count_at(1), 12u);
  EXPECT_EQ(law.count_at(10), 84u);
}

TEST(ArrivalLawTest, SublinearGrowth) {
  // beta = 0.5: f = 1 + sqrt(t).
  ArrivalLaw law(1, 1.0, 0.0, 0.5);
  EXPECT_EQ(law.count_at(0), 1u);
  EXPECT_EQ(law.count_at(4), 3u);
  EXPECT_EQ(law.count_at(100), 11u);
}

TEST(ArrivalLawTest, ArrivalTimesAreMonotone) {
  ArrivalLaw law(2, 1.0, 0.5, 0.7);
  rtw::core::Tick prev = 0;
  for (std::uint64_t j = 1; j <= 40; ++j) {
    const auto t = law.arrival_time(j, 1 << 20);
    ASSERT_TRUE(t.has_value()) << "j=" << j;
    EXPECT_GE(*t, prev);
    prev = *t;
    // The arrival time is the *first* tick with count >= j.
    EXPECT_GE(law.count_at(*t), j);
    if (*t > 0) {
      EXPECT_LT(law.count_at(*t - 1), j);
    }
  }
}

TEST(ArrivalLawTest, InitialDataArriveAtZero) {
  ArrivalLaw law(5, 1.0, 0.0, 1.0);
  for (std::uint64_t j = 1; j <= 5; ++j)
    EXPECT_EQ(law.arrival_time(j, 100), rtw::core::Tick{0});
  EXPECT_GT(*law.arrival_time(6, 100), 0u);
}

TEST(ArrivalLawTest, BetaZeroStopsProducing) {
  ArrivalLaw law(3, 2.0, 0.0, 0.0);  // f = 3 + 2 forever
  EXPECT_EQ(law.count_at(1000), 5u);
  EXPECT_EQ(law.arrival_time(6, 1 << 20), std::nullopt);
}

TEST(ArrivalLawTest, Validation) {
  EXPECT_THROW(ArrivalLaw(0, 1, 0, 1), rtw::core::ModelError);
  EXPECT_THROW(ArrivalLaw(1, 0, 0, 1), rtw::core::ModelError);
  EXPECT_THROW(ArrivalLaw(1, 1, -1, 1), rtw::core::ModelError);
  ArrivalLaw ok(1, 1, 0, 1);
  EXPECT_THROW(ok.arrival_time(0, 10), rtw::core::ModelError);
}

// ---------------------------------------------------- predicted_termination

TEST(TerminationTest, SlowLawTerminates) {
  // f = 8 + sqrt(t), cost 1: needs t >= 8 + sqrt(t) -> t* = 12 gives
  // 8+3=11 <= 12; check the solver finds the least such t.
  ArrivalLaw law(8, 1.0, 0.0, 0.5);
  const auto t = predicted_termination(law, {1, 1}, 10000);
  ASSERT_TRUE(t.has_value());
  // Verify minimality.
  const auto needed = [&](rtw::core::Tick tt) {
    return law.count_at(tt);  // cost 1, 1 processor
  };
  EXPECT_LE(needed(*t), *t);
  EXPECT_GT(needed(*t - 1), *t - 1);
}

TEST(TerminationTest, LinearLawCriticalRate) {
  // f = n + k t with cost c: terminates iff kc < 1 (asymptotically).
  ArrivalLaw sub(5, 0.4, 0.0, 1.0);   // 0.4 data/tick, cost 2 -> 0.8 < 1
  EXPECT_TRUE(predicted_termination(sub, {2, 1}, 100000).has_value());
  ArrivalLaw super(5, 0.6, 0.0, 1.0);  // 0.6 * 2 = 1.2 > 1: diverges
  EXPECT_FALSE(predicted_termination(super, {2, 1}, 100000).has_value());
}

TEST(TerminationTest, ParallelismShiftsTheFrontier) {
  // The same super-critical law becomes feasible with 2 processors --
  // the paper's "parallel approach can make the difference between
  // success and failure".
  ArrivalLaw law(5, 0.6, 0.0, 1.0);
  EXPECT_FALSE(predicted_termination(law, {2, 1}, 100000).has_value());
  EXPECT_TRUE(predicted_termination(law, {2, 2}, 100000).has_value());
}

// ------------------------------------------------------------ d-algorithm

TEST(DAlgorithmTest, ExecutionMatchesPrediction) {
  ArrivalLaw law(8, 1.0, 0.0, 0.5);
  RunningCount counter;
  const auto run =
      run_d_algorithm(law, {1, 1}, counter, datum_mod7, 10000);
  ASSERT_TRUE(run.terminated);
  const auto predicted = predicted_termination(law, {1, 1}, 10000);
  ASSERT_TRUE(predicted.has_value());
  // The executor's event-level semantics and the fixed point agree within
  // one tick (the fixed point ignores the end-of-tick arrival check).
  EXPECT_NEAR(static_cast<double>(run.termination_time),
              static_cast<double>(*predicted), 1.0);
  EXPECT_EQ(run.processed, run.arrived);
}

TEST(DAlgorithmTest, DivergentLawNeverTerminates) {
  ArrivalLaw law(5, 2.0, 0.0, 1.0);  // 2 data/tick, cost 1 -> never catches up
  RunningSum sum;
  const auto run = run_d_algorithm(law, {1, 1}, sum, datum_mod7, 2000);
  EXPECT_FALSE(run.terminated);
  EXPECT_LT(run.processed, run.arrived);
}

TEST(DAlgorithmTest, SolutionReflectsProcessedData) {
  ArrivalLaw law(3, 1.0, 0.0, 0.0);  // 3 initial + 1 extra at t=... beta=0
  RunningSum sum;
  const auto run = run_d_algorithm(
      law, {1, 1}, sum, [](std::uint64_t j) { return Symbol::nat(j); }, 100);
  ASSERT_TRUE(run.terminated);
  // beta=0, k=1: one extra datum at time 0 (t^0 = 1): total 4 data: 1+2+3+4.
  EXPECT_EQ(run.processed, 4u);
  EXPECT_EQ(run.solution, (std::vector<Symbol>{Symbol::nat(10)}));
}

TEST(DAlgorithmTest, MoreProcessorsTerminateFaster) {
  ArrivalLaw law(20, 0.5, 0.0, 0.9);
  RunningCount c1, c2;
  const auto one = run_d_algorithm(law, {2, 1}, c1, datum_mod7, 100000);
  const auto four = run_d_algorithm(law, {2, 4}, c2, datum_mod7, 100000);
  ASSERT_TRUE(one.terminated);
  ASSERT_TRUE(four.terminated);
  EXPECT_LT(four.termination_time, one.termination_time);
}

TEST(DAlgorithmTest, Validation) {
  RunningSum sum;
  ArrivalLaw law(1, 1, 0, 1);
  EXPECT_THROW(run_d_algorithm(law, {0, 1}, sum, datum_mod7, 10),
               rtw::core::ModelError);
  EXPECT_THROW(run_d_algorithm(law, {1, 0}, sum, datum_mod7, 10),
               rtw::core::ModelError);
  EXPECT_THROW(run_d_algorithm(law, {1, 1}, sum, nullptr, 10),
               rtw::core::ModelError);
}

// ------------------------------------------------------------ c-algorithm

TEST(CAlgorithmTest, TerminatesWhenCorrectionsSlow) {
  ArrivalLaw law(10, 1.0, 0.0, 0.5);  // sqrt corrections
  const auto run = run_c_algorithm(law, {2, 1}, 3, 10000);
  EXPECT_TRUE(run.terminated);
  EXPECT_GT(run.corrections_applied, 0u);
  EXPECT_EQ(run.reprocessed_units, run.corrections_applied * 3);
}

TEST(CAlgorithmTest, FastCorrectionsDiverge) {
  ArrivalLaw law(10, 1.0, 0.0, 1.0);  // 1 correction/tick
  const auto run = run_c_algorithm(law, {1, 1}, 2, 2000);
  EXPECT_FALSE(run.terminated);
}

// ------------------------------------------------------------------ word

TEST(DataAccWordTest, LayoutAndWellBehavedness) {
  DataAccInstance inst;
  inst.law = ArrivalLaw(3, 1.0, 0.0, 1.0);  // one new datum per tick
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j); };
  inst.proposed_output = {Symbol::nat(42)};
  const auto w = build_dataacc_word(inst);
  EXPECT_TRUE(w.infinite());
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Header: o $ then initial data at time 0.
  EXPECT_EQ(w.at(0).sym, Symbol::nat(42));
  EXPECT_EQ(w.at(1).sym, rtw::core::marks::dollar());
  EXPECT_EQ(w.at(2).sym, Symbol::nat(1));
  EXPECT_EQ(w.at(4).sym, Symbol::nat(3));
  EXPECT_EQ(w.at(4).time, 0u);
  // Then pairs: c at t_j - 1, datum at t_j.
  EXPECT_EQ(w.at(5).sym, rtw::core::marks::arrival());
  EXPECT_EQ(w.at(5).time, 0u);  // first extra datum arrives at t=1
  EXPECT_EQ(w.at(6).sym, Symbol::nat(4));
  EXPECT_EQ(w.at(6).time, 1u);
}

TEST(DataAccWordTest, MonotoneUnderBurstyArrivals) {
  DataAccInstance inst;
  inst.law = ArrivalLaw(1, 3.0, 0.0, 1.0);  // three new data per tick
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j); };
  const auto w = build_dataacc_word(inst);
  rtw::core::Tick prev = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_GE(w.at(i).time, prev) << "i=" << i;
    prev = w.at(i).time;
  }
}

TEST(DataAccWordTest, BetaZeroTailStaysWellBehaved) {
  DataAccInstance inst;
  inst.law = ArrivalLaw(2, 1.0, 0.0, 0.0);
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j); };
  const auto w = build_dataacc_word(inst, 1000);
  // After the (finite) stream, trailing c markers keep time progressing.
  rtw::core::Tick prev = 0;
  bool progressed = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    prev = w.at(i).time;
    if (prev > 20) progressed = true;
  }
  EXPECT_TRUE(progressed);
}

TEST(DataAccWordTest, NullDatumThrows) {
  DataAccInstance inst;
  inst.law = ArrivalLaw(1, 1, 0, 1);
  EXPECT_THROW(build_dataacc_word(inst), rtw::core::ModelError);
}

// -------------------------------------------------------------- acceptor

DataAccInstance accepted_instance() {
  DataAccInstance inst;
  inst.law = ArrivalLaw(4, 1.0, 0.0, 0.5);
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j % 5); };
  RunningSum probe;
  const auto run = run_d_algorithm(inst.law, {1, 1}, probe, inst.datum, 5000);
  inst.proposed_output = run.solution;
  return inst;
}

TEST(DataAccAcceptorTest, AcceptsTrueSolution) {
  auto inst = accepted_instance();
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  const auto r =
      rtw::engine::run(acceptor, build_dataacc_word(inst)).result;
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.accepted);
}

TEST(DataAccAcceptorTest, RejectsWrongSolution) {
  auto inst = accepted_instance();
  inst.proposed_output = {Symbol::nat(999999)};
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  const auto r =
      rtw::engine::run(acceptor, build_dataacc_word(inst)).result;
  EXPECT_TRUE(r.exact);
  EXPECT_FALSE(r.accepted);
}

TEST(DataAccAcceptorTest, DivergentStreamNeverLocks) {
  DataAccInstance inst;
  inst.law = ArrivalLaw(5, 2.0, 0.0, 1.0);  // outruns a cost-1 processor
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j % 5); };
  inst.proposed_output = {Symbol::nat(0)};
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  rtw::core::RunOptions options;
  options.horizon = 3000;
  const auto r =
      rtw::engine::run(acceptor, build_dataacc_word(inst), options).result;
  EXPECT_FALSE(r.exact);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.f_count, 0u);
}

TEST(DataAccAcceptorTest, TerminationTimeMatchesExecutor) {
  auto inst = accepted_instance();
  RunningSum probe;
  const auto run = run_d_algorithm(inst.law, {1, 1}, probe, inst.datum, 5000);
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  rtw::engine::run(acceptor, build_dataacc_word(inst)).result;
  EXPECT_EQ(acceptor.termination_time(), run.termination_time);
  EXPECT_EQ(acceptor.processed(), run.processed);
}

TEST(DataAccLanguageTest, SamplesAreMembers) {
  auto lang = dataacc_language(std::make_shared<RunningSum>(), {1, 1});
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_TRUE(lang.contains(lang.sample(i))) << "sample " << i;
}

// Property sweep: acceptance tracks d-algorithm termination across laws.
struct LawCase {
  double k;
  double beta;
  bool should_terminate;
};

class LawProperty : public ::testing::TestWithParam<LawCase> {};

TEST_P(LawProperty, AcceptanceIffTermination) {
  const auto& p = GetParam();
  DataAccInstance inst;
  inst.law = ArrivalLaw(6, p.k, 0.0, p.beta);
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j % 3); };
  RunningSum probe;
  const auto run = run_d_algorithm(inst.law, {1, 1}, probe, inst.datum, 4000);
  EXPECT_EQ(run.terminated, p.should_terminate)
      << "k=" << p.k << " beta=" << p.beta;
  inst.proposed_output =
      run.terminated ? run.solution : std::vector<Symbol>{Symbol::nat(0)};
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  rtw::core::RunOptions options;
  options.horizon = 4000;
  const auto r =
      rtw::engine::run(acceptor, build_dataacc_word(inst), options).result;
  EXPECT_EQ(r.accepted && r.exact, p.should_terminate);
}

INSTANTIATE_TEST_SUITE_P(
    Laws, LawProperty,
    ::testing::Values(LawCase{0.5, 0.5, true}, LawCase{0.9, 0.5, true},
                      LawCase{0.5, 1.0, true}, LawCase{2.0, 1.0, false},
                      LawCase{1.5, 1.0, false}, LawCase{0.3, 0.9, true}));

}  // namespace

// ------------------------------------------- c-algorithm words (section 4.2)

namespace corrections {

using namespace rtw::dataacc;
using rtw::core::Symbol;

CorrectionInstance slow_corrections() {
  CorrectionInstance inst;
  inst.law = ArrivalLaw(4, 1.0, 0.0, 0.5);  // sqrt-rate corrections
  inst.initial = [](std::uint64_t i) { return 10 + i; };  // 10, 11, 12, 13
  inst.correction = [](std::uint64_t j) {
    return Correction{j % 4, 100 * j};
  };
  return inst;
}

TEST(CorrectionWordTest, LayoutAndWellBehavedness) {
  auto inst = slow_corrections();
  inst.proposed_output = {Symbol::nat(0)};
  const auto w = build_correction_word(inst);
  EXPECT_EQ(w.well_behaved(), rtw::core::Certificate::Proven);
  // Header: o $ then 4 initial values at time 0.
  EXPECT_EQ(w.at(0).sym, Symbol::nat(0));
  EXPECT_EQ(w.at(1).sym, rtw::core::marks::dollar());
  EXPECT_EQ(w.at(2).sym, Symbol::nat(10));
  EXPECT_EQ(w.at(5).sym, Symbol::nat(13));
  // First correction group: c, then <fix> index value.
  EXPECT_EQ(w.at(6).sym, rtw::core::marks::arrival());
  EXPECT_EQ(w.at(7).sym, fix_mark());
  EXPECT_EQ(w.at(8).sym, Symbol::nat(1));    // index of correction 1
  EXPECT_EQ(w.at(9).sym, Symbol::nat(100));  // new value
}

TEST(CorrectionWordTest, CorrectedSumGroundTruth) {
  const auto inst = slow_corrections();
  EXPECT_EQ(corrected_sum(inst, 0), 10 + 11 + 12 + 13u);
  // Correction 1: values[1] = 100 -> 10 + 100 + 12 + 13.
  EXPECT_EQ(corrected_sum(inst, 1), 135u);
  // Correction 2: values[2] = 200 -> 10 + 100 + 200 + 13.
  EXPECT_EQ(corrected_sum(inst, 2), 323u);
}

TEST(CorrectionAcceptorTest, AcceptsTrueCorrectedSum) {
  auto inst = slow_corrections();
  // Learn the deterministic termination point with a throwaway run.
  inst.proposed_output = {Symbol::marker("wrong")};
  CorrectionAcceptor probe(1, 2);
  rtw::core::RunOptions options;
  options.horizon = 4000;
  const auto r0 =
      rtw::engine::run(probe, build_correction_word(inst), options).result;
  ASSERT_TRUE(r0.exact);
  ASSERT_FALSE(r0.accepted);
  const auto applied = probe.corrections_applied();

  inst.proposed_output = {Symbol::nat(corrected_sum(inst, applied))};
  CorrectionAcceptor acceptor(1, 2);
  const auto r =
      rtw::engine::run(acceptor, build_correction_word(inst), options).result;
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(acceptor.corrections_applied(), applied);
  EXPECT_EQ(acceptor.termination_time(), probe.termination_time());
}

TEST(CorrectionAcceptorTest, FastCorrectionsNeverLock) {
  CorrectionInstance inst;
  inst.law = ArrivalLaw(4, 2.0, 0.0, 1.0);  // 2 corrections/tick
  inst.initial = [](std::uint64_t i) { return i; };
  inst.correction = [](std::uint64_t j) { return Correction{j % 4, j}; };
  inst.proposed_output = {Symbol::nat(0)};
  CorrectionAcceptor acceptor(1, 2);  // cost 2/correction vs 2 arrivals/tick
  rtw::core::RunOptions options;
  options.horizon = 1500;
  const auto r =
      rtw::engine::run(acceptor, build_correction_word(inst), options).result;
  EXPECT_FALSE(r.exact);
  EXPECT_FALSE(r.accepted);
}

TEST(CorrectionAcceptorTest, Validation) {
  EXPECT_THROW(CorrectionAcceptor(0, 1), rtw::core::ModelError);
  EXPECT_THROW(CorrectionAcceptor(1, 0), rtw::core::ModelError);
  CorrectionInstance inst;
  EXPECT_THROW(build_correction_word(inst), rtw::core::ModelError);
}

}  // namespace corrections
