// Tests for section 4.1: usefulness profiles, the deadline word builder
// (cases i/ii/iii), the (P_w, P_m) acceptor, and the scheduling substrate.

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/problem.hpp"
#include "rtw/deadline/scheduling.hpp"
#include "rtw/deadline/usefulness.hpp"
#include "rtw/deadline/word.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::deadline;
using rtw::core::Certificate;
using rtw::core::Symbol;
using rtw::core::TimedWord;

// ----------------------------------------------------------- Usefulness

TEST(UsefulnessTest, NoneIsConstant) {
  const auto u = Usefulness::none(7);
  EXPECT_EQ(u.kind(), DeadlineKind::None);
  EXPECT_EQ(u.at(0), 7u);
  EXPECT_EQ(u.at(1000000), 7u);
}

TEST(UsefulnessTest, FirmDropsToZeroAtDeadline) {
  const auto u = Usefulness::firm(20, 10);
  EXPECT_EQ(u.at(0), 10u);
  EXPECT_EQ(u.at(19), 10u);
  EXPECT_EQ(u.at(20), 0u);
  EXPECT_EQ(u.at(21), 0u);
}

TEST(UsefulnessTest, HyperbolicMatchesPaperExample) {
  // u(t) = max * 1/(t - 20) after a deadline of 20.
  const auto u = Usefulness::hyperbolic(20, 100);
  EXPECT_EQ(u.at(20), 100u);
  EXPECT_EQ(u.at(21), 100u);  // 100/1
  EXPECT_EQ(u.at(25), 20u);   // 100/5
  EXPECT_EQ(u.at(70), 2u);    // 100/50
  EXPECT_EQ(u.at(121), 0u);   // 100/101 floored
}

TEST(UsefulnessTest, LinearReachesZeroAtSpan) {
  const auto u = Usefulness::linear(10, 8, 4);
  EXPECT_EQ(u.at(10), 8u);
  EXPECT_EQ(u.at(11), 6u);
  EXPECT_EQ(u.at(12), 4u);
  EXPECT_EQ(u.at(13), 2u);
  EXPECT_EQ(u.at(14), 0u);
  EXPECT_THROW(Usefulness::linear(10, 8, 0), rtw::core::ModelError);
}

TEST(UsefulnessTest, FirstBelowFindsCrossing) {
  const auto u = Usefulness::linear(10, 8, 4);
  EXPECT_EQ(u.first_below(5, 1000), 12u);  // first t with u(t) < 5 is 12 (4)
  EXPECT_EQ(u.first_below(1, 1000), 14u);
  const auto none = Usefulness::none(3);
  EXPECT_EQ(none.first_below(1, 100), 100u);  // never crossed
}

// ----------------------------------------------------------- word builder

DeadlineInstance simple_instance(Usefulness u, std::uint64_t min_ok = 1) {
  DeadlineInstance inst;
  inst.input = {Symbol::nat(3), Symbol::nat(1), Symbol::nat(2)};
  SortProblem sorter;
  inst.proposed_output = sorter.solve(inst.input);
  inst.usefulness = u;
  inst.min_acceptable = min_ok;
  return inst;
}

TEST(DeadlineWordTest, CaseNoneLayout) {
  auto inst = simple_instance(Usefulness::none(1));
  const auto w = build_deadline_word(inst);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Header at time 0: o $ iota $ -- then w's from time 1.
  const auto head = w.prefix(12);
  std::size_t zero_count = 0;
  for (const auto& ts : head)
    if (ts.time == 0) ++zero_count;
  EXPECT_EQ(zero_count, 3 + 1 + 3 + 1u);  // o, $, iota, $
  EXPECT_EQ(w.at(8).sym, rtw::core::marks::waiting());
  EXPECT_EQ(w.at(8).time, 1u);
  EXPECT_EQ(w.at(9).time, 2u);
}

TEST(DeadlineWordTest, CaseFirmLayout) {
  auto inst = simple_instance(Usefulness::firm(5, 10), 2);
  const auto w = build_deadline_word(inst);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Leading minimum-usefulness nat, tagged by the <min> marker.
  EXPECT_EQ(w.at(0).sym, Symbol::marker("min"));
  EXPECT_EQ(w.at(1).sym, Symbol::nat(2));
  // w symbols at 1..4, then (d, 0) pairs from t_d = 5.
  const auto head = w.prefix(20);
  std::size_t w_count = 0;
  for (const auto& ts : head)
    if (ts.sym == rtw::core::marks::waiting()) ++w_count;
  EXPECT_EQ(w_count, 4u);
  // Find the first deadline pair.
  bool found = false;
  for (std::size_t i = 0; i + 1 < head.size(); ++i) {
    if (head[i].sym == rtw::core::marks::deadline()) {
      EXPECT_EQ(head[i].time, 5u);
      EXPECT_EQ(head[i + 1].sym, Symbol::nat(0));
      EXPECT_EQ(head[i + 1].time, 5u);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DeadlineWordTest, CaseSoftCarriesDecayValues) {
  auto inst = simple_instance(Usefulness::linear(4, 6, 3), 1);
  const auto w = build_deadline_word(inst);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Pairs: (d,6)@4 (d,4)@5 (d,2)@6 then (d,0) forever.
  std::vector<std::uint64_t> decay;
  for (const auto& ts : w.prefix(40)) {
    if (ts.sym.is_nat() && ts.time >= 4) decay.push_back(ts.sym.as_nat());
    if (decay.size() == 5) break;
  }
  EXPECT_EQ(decay, (std::vector<std::uint64_t>{6, 4, 2, 0, 0}));
}

TEST(DeadlineWordTest, DeadlineAtZeroThrows) {
  auto inst = simple_instance(Usefulness::firm(0, 10));
  EXPECT_THROW(build_deadline_word(inst), rtw::core::ModelError);
}

TEST(DeadlineWordTest, MinAboveMaxThrows) {
  auto inst = simple_instance(Usefulness::firm(5, 3), 9);
  EXPECT_THROW(build_deadline_word(inst), rtw::core::ModelError);
}

TEST(DeadlineHeaderTest, ParsesRoundTrip) {
  auto inst = simple_instance(Usefulness::firm(5, 10), 2);
  const auto w = build_deadline_word(inst);
  // All symbols at time 0 form the header.
  std::vector<rtw::core::TimedSymbol> at_zero;
  for (const auto& ts : w.prefix(32))
    if (ts.time == 0) at_zero.push_back(ts);
  const auto header = parse_deadline_header(at_zero);
  EXPECT_TRUE(header.has_min);
  EXPECT_EQ(header.min_acceptable, 2u);
  EXPECT_EQ(header.proposed_output, inst.proposed_output);
  EXPECT_EQ(header.input, inst.input);
}

TEST(DeadlineHeaderTest, MissingDelimitersThrow) {
  EXPECT_THROW(parse_deadline_header({{Symbol::chr('a'), 0}}),
               rtw::core::ModelError);
  EXPECT_THROW(
      parse_deadline_header({{rtw::core::marks::dollar(), 0},
                             {Symbol::chr('a'), 0}}),
      rtw::core::ModelError);
}

// -------------------------------------------------------------- acceptor

TEST(DeadlineAcceptorTest, AcceptsCorrectSolutionWithinDeadline) {
  SortProblem sorter;
  auto inst = simple_instance(Usefulness::firm(100, 10), 1);
  EXPECT_TRUE(accepts_instance(sorter, inst));
}

TEST(DeadlineAcceptorTest, RejectsWrongSolution) {
  SortProblem sorter;
  auto inst = simple_instance(Usefulness::firm(100, 10), 1);
  inst.proposed_output = {Symbol::nat(9), Symbol::nat(9), Symbol::nat(9)};
  EXPECT_FALSE(accepts_instance(sorter, inst));
}

TEST(DeadlineAcceptorTest, RejectsMissedFirmDeadline) {
  // Work cost of sorting 3 elements is 3 * ceil(log2 3) = 6; a firm
  // deadline at 2 with a positive usefulness floor must reject.
  SortProblem sorter;
  auto inst = simple_instance(Usefulness::firm(2, 10), 1);
  EXPECT_FALSE(accepts_instance(sorter, inst));
}

TEST(DeadlineAcceptorTest, FirmMissWithZeroFloorIsAcceptable) {
  // The paper's monitor only rejects when usefulness < minimum acceptable;
  // with a floor of 0 a late-but-correct computation still passes.
  SortProblem sorter;
  auto inst = simple_instance(Usefulness::firm(2, 10), 0);
  EXPECT_TRUE(accepts_instance(sorter, inst));
}

TEST(DeadlineAcceptorTest, SoftDeadlineDegradesGracefully) {
  FixedCostProblem pi(30);  // completes at t=30
  DeadlineInstance inst;
  inst.input = {Symbol::nat(5)};
  inst.proposed_output = inst.input;
  // Hyperbolic decay from t_d=20 with max 100: u(30) = 100/10 = 10.
  inst.usefulness = Usefulness::hyperbolic(20, 100);
  inst.min_acceptable = 10;
  EXPECT_TRUE(accepts_instance(pi, inst));
  inst.min_acceptable = 11;  // floor just above u(30)
  EXPECT_FALSE(accepts_instance(pi, inst));
}

TEST(DeadlineAcceptorTest, NoDeadlineAlwaysAcceptsCorrectSolutions) {
  FixedCostProblem pi(500);
  DeadlineInstance inst;
  inst.input = {Symbol::chr('q')};
  inst.proposed_output = inst.input;
  inst.usefulness = Usefulness::none(1);
  EXPECT_TRUE(accepts_instance(pi, inst));
}

TEST(DeadlineAcceptorTest, CompletionTimeIsWorkCost) {
  FixedCostProblem pi(17);
  DeadlineAcceptor acceptor(pi);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(1)};
  inst.proposed_output = inst.input;
  inst.usefulness = Usefulness::firm(40, 5);
  inst.min_acceptable = 1;
  const auto r = rtw::engine::run(acceptor, build_deadline_word(inst)).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(acceptor.completion_time(), 17u);
  EXPECT_EQ(r.first_f, 17u);
}

TEST(DeadlineLanguageTest, SamplesAreMembers) {
  auto lang = deadline_language(std::make_shared<SortProblem>());
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto w = lang.sample(i);
    EXPECT_TRUE(lang.contains(w)) << "sample " << i;
    EXPECT_TRUE(holds(w.well_behaved()));
  }
}

// Tightness sweep: acceptance flips exactly at deadline == cost.
class TightnessProperty : public ::testing::TestWithParam<rtw::core::Tick> {};

TEST_P(TightnessProperty, FirmVerdictMatchesArithmetic) {
  const rtw::core::Tick deadline = GetParam();
  FixedCostProblem pi(25);
  DeadlineInstance inst;
  inst.input = {Symbol::nat(4)};
  inst.proposed_output = inst.input;
  inst.usefulness = Usefulness::firm(deadline, 10);
  inst.min_acceptable = 1;
  // The monitor sees `d` at completion time T iff T >= t_d.
  EXPECT_EQ(accepts_instance(pi, inst), 25 < deadline) << "t_d=" << deadline;
}

INSTANTIATE_TEST_SUITE_P(Deadlines, TightnessProperty,
                         ::testing::Values<rtw::core::Tick>(1, 10, 24, 25, 26,
                                                            40, 100));

// ------------------------------------------------------------ scheduling

std::vector<Task> two_periodic() {
  // Classic feasible pair: U = 1/4 + 2/5 = 0.65.
  return {{0, 0, 1, 4, 4}, {1, 0, 2, 5, 5}};
}

TEST(SchedulingTest, EdfMeetsFeasibleSet) {
  const auto r = simulate_schedule(two_periodic(), Policy::Edf, 200);
  EXPECT_EQ(r.missed, 0u);
  EXPECT_GT(r.completed, 0u);
}

TEST(SchedulingTest, LlfMeetsFeasibleSet) {
  const auto r = simulate_schedule(two_periodic(), Policy::Llf, 200);
  EXPECT_EQ(r.missed, 0u);
}

TEST(SchedulingTest, RmMeetsLowUtilizationSet) {
  const auto r = simulate_schedule(two_periodic(), Policy::RateMonotonic, 200);
  EXPECT_EQ(r.missed, 0u);
}

TEST(SchedulingTest, OverloadMissesUnderEveryPolicy) {
  // U = 1.25: some job must miss under any policy.
  std::vector<Task> tasks = {{0, 0, 3, 4, 4}, {1, 0, 2, 4, 4}};
  for (auto p : {Policy::Edf, Policy::RateMonotonic, Policy::Fifo,
                 Policy::Llf}) {
    const auto r = simulate_schedule(tasks, p, 100);
    EXPECT_GT(r.missed, 0u) << to_string(p);
  }
}

TEST(SchedulingTest, EdfBeatsFifoUnderContention) {
  // A long early job starves a short tight job under FIFO.
  std::vector<Task> tasks = {
      {0, 0, 8, 50, 0},   // aperiodic: long, loose deadline
      {1, 1, 2, 4, 0},    // aperiodic: short, tight deadline
  };
  const auto fifo = simulate_schedule(tasks, Policy::Fifo, 100);
  const auto edf = simulate_schedule(tasks, Policy::Edf, 100);
  EXPECT_GT(fifo.missed, edf.missed);
  EXPECT_EQ(edf.missed, 0u);
}

TEST(SchedulingTest, JobsReleasedPerPeriod) {
  const auto r = simulate_schedule({{0, 0, 1, 10, 10}}, Policy::Edf, 100);
  EXPECT_EQ(r.jobs.size(), 10u);
  EXPECT_EQ(r.jobs[3].release, 30u);
  EXPECT_EQ(r.jobs[3].absolute_deadline, 40u);
}

TEST(SchedulingTest, ResponseTimeTracked) {
  const auto r = simulate_schedule({{0, 0, 3, 10, 10}}, Policy::Edf, 50);
  EXPECT_DOUBLE_EQ(r.response_time.mean(), 3.0);  // uncontended
}

TEST(SchedulingTest, PreemptionCounted) {
  // Task 1 (tight deadline) preempts the long task 0 under EDF.
  std::vector<Task> tasks = {{0, 0, 10, 40, 0}, {1, 2, 1, 3, 0}};
  const auto r = simulate_schedule(tasks, Policy::Edf, 60);
  EXPECT_GE(r.preemptions, 1u);
  EXPECT_EQ(r.missed, 0u);
}

TEST(SchedulingTest, ValidationErrors) {
  EXPECT_THROW(simulate_schedule({{0, 0, 0, 4, 4}}, Policy::Edf, 10),
               rtw::core::ModelError);
  EXPECT_THROW(
      simulate_schedule({{0, 0, 1, 4, 4}, {0, 0, 1, 5, 5}}, Policy::Edf, 10),
      rtw::core::ModelError);
}

TEST(SchedulingTest, UtilizationComputed) {
  EXPECT_NEAR(utilization(two_periodic()), 0.65, 1e-12);
  EXPECT_DOUBLE_EQ(utilization({{0, 0, 3, 9, 0}}), 0.0);  // aperiodic
}

TEST(SchedulingTest, RandomTaskSetHitsTarget) {
  rtw::sim::Xoshiro256ss rng(99);
  for (double target : {0.3, 0.6, 0.9}) {
    const auto tasks = random_task_set(5, target, rng);
    EXPECT_EQ(tasks.size(), 5u);
    // Integer rounding skews utilization slightly; stay within 25%.
    EXPECT_NEAR(utilization(tasks), target, 0.25) << "target " << target;
  }
}

// Property: EDF is optimal -- any task set FIFO schedules without misses is
// also schedulable by EDF.
class EdfDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfDominance, EdfNeverWorseThanFifoOrRm) {
  rtw::sim::Xoshiro256ss rng(GetParam());
  const auto tasks = random_task_set(4, 0.7, rng);
  const auto edf = simulate_schedule(tasks, Policy::Edf, 600);
  const auto fifo = simulate_schedule(tasks, Policy::Fifo, 600);
  const auto rm = simulate_schedule(tasks, Policy::RateMonotonic, 600);
  EXPECT_LE(edf.missed, fifo.missed);
  EXPECT_LE(edf.missed, rm.missed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfDominance,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                          8));

}  // namespace
