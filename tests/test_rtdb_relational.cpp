// Tests for the relational substrate (section 5.1.1): values, relations,
// the algebra, queries, and the Figure 1 / Figure 2 example.

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/ngc.hpp"
#include "rtw/rtdb/query.hpp"
#include "rtw/rtdb/relation.hpp"
#include "rtw/rtdb/value.hpp"

namespace {

using namespace rtw::rtdb;
using rtw::core::ModelError;

// ----------------------------------------------------------------- Value

TEST(ValueTest, DateFormatting) {
  EXPECT_EQ(to_string(Date{1999, 10}), "October 1999");
  EXPECT_EQ(to_string(Date{1999, 11}), "November 1999");
  EXPECT_EQ(to_string(Date{2026, 7}), "July 2026");
}

TEST(ValueTest, DateParsingRoundTrip) {
  for (int m = 1; m <= 12; ++m) {
    const Date d{2001, m};
    EXPECT_EQ(parse_date(to_string(d)), d);
  }
  EXPECT_THROW(parse_date("Smarch 1999"), ModelError);
  EXPECT_THROW(parse_date("November"), ModelError);
  EXPECT_THROW(parse_date("November x"), ModelError);
}

TEST(ValueTest, DateOrdering) {
  EXPECT_LT(Date(1999, 10), Date(1999, 11));
  EXPECT_LT(Date(1999, 12), Date(2000, 1));
}

TEST(ValueTest, VariantRendering) {
  EXPECT_EQ(to_string(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(Value{std::string("abc")}), "abc");
  EXPECT_EQ(to_string(Value{Date{1999, 11}}), "November 1999");
}

// -------------------------------------------------------------- Relation

Relation people() {
  Relation r("People", {"Name", "Age"});
  r.insert({Value{std::string("ada")}, Value{std::int64_t{36}}});
  r.insert({Value{std::string("bob")}, Value{std::int64_t{25}}});
  r.insert({Value{std::string("cyd")}, Value{std::int64_t{36}}});
  return r;
}

TEST(RelationTest, SetSemantics) {
  Relation r = people();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_FALSE(r.insert({Value{std::string("ada")}, Value{std::int64_t{36}}}));
  EXPECT_EQ(r.size(), 3u);
}

TEST(RelationTest, ArityChecked) {
  Relation r = people();
  EXPECT_THROW(r.insert({Value{std::string("x")}}), ModelError);
}

TEST(RelationTest, DuplicateAttributeRejected) {
  EXPECT_THROW(Relation("R", {"A", "A"}), ModelError);
}

TEST(RelationTest, FieldAccess) {
  Relation r = people();
  const auto& t = r.tuples()[1];
  EXPECT_EQ(r.field(t, "Name"), Value{std::string("bob")});
  EXPECT_THROW(r.field(t, "Nope"), ModelError);
}

TEST(RelationTest, EraseIf) {
  Relation r = people();
  const auto removed = r.erase_if([&r](const Tuple& t) {
    return r.field(t, "Age") == Value{std::int64_t{36}};
  });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(DatabaseTest, PutGetSchema) {
  Database db;
  db.put(people());
  EXPECT_TRUE(db.has("People"));
  EXPECT_FALSE(db.has("Nope"));
  EXPECT_THROW(db.get("Nope"), ModelError);
  EXPECT_EQ(db.schema(), std::vector<std::string>{"People"});
  EXPECT_EQ(db.size(), 3u);
}

// --------------------------------------------------------------- algebra

TEST(AlgebraTest, SelectByPredicate) {
  const auto adults = select(people(), [](const Relation& r, const Tuple& t) {
    return r.field(t, "Age") == Value{std::int64_t{36}};
  });
  EXPECT_EQ(adults.size(), 2u);
}

TEST(AlgebraTest, SelectEqAndLt) {
  EXPECT_EQ(select_eq(people(), "Name", Value{std::string("bob")}).size(), 1u);
  EXPECT_EQ(select_lt(people(), "Age", Value{std::int64_t{30}}).size(), 1u);
}

TEST(AlgebraTest, ProjectCollapsesDuplicates) {
  const auto ages = project(people(), {"Age"});
  EXPECT_EQ(ages.size(), 2u);  // {36, 25}
  EXPECT_EQ(ages.sort(), std::vector<Attribute>{"Age"});
  EXPECT_THROW(project(people(), {"Nope"}), ModelError);
}

TEST(AlgebraTest, RenameChangesSort) {
  const auto renamed = rename(people(), {{"Name", "Id"}});
  EXPECT_EQ(renamed.sort(), (std::vector<Attribute>{"Id", "Age"}));
  EXPECT_EQ(renamed.size(), 3u);
}

TEST(AlgebraTest, ProductAndCollision) {
  Relation jobs("Jobs", {"Title"});
  jobs.insert({Value{std::string("dev")}});
  jobs.insert({Value{std::string("ops")}});
  const auto prod = product(people(), jobs);
  EXPECT_EQ(prod.size(), 6u);
  EXPECT_EQ(prod.arity(), 3u);
  EXPECT_THROW(product(people(), people()), ModelError);
}

TEST(AlgebraTest, NaturalJoinOnSharedAttribute) {
  Relation salaries("Salaries", {"Name", "Salary"});
  salaries.insert({Value{std::string("ada")}, Value{std::int64_t{100}}});
  salaries.insert({Value{std::string("bob")}, Value{std::int64_t{80}}});
  salaries.insert({Value{std::string("zed")}, Value{std::int64_t{10}}});
  const auto joined = natural_join(people(), salaries);
  EXPECT_EQ(joined.size(), 2u);  // ada, bob
  EXPECT_EQ(joined.sort(), (std::vector<Attribute>{"Name", "Age", "Salary"}));
}

TEST(AlgebraTest, NaturalJoinWithoutSharedIsProduct) {
  Relation colors("Colors", {"Color"});
  colors.insert({Value{std::string("red")}});
  const auto joined = natural_join(people(), colors);
  EXPECT_EQ(joined.size(), 3u);
}

TEST(AlgebraTest, SetOperations) {
  Relation a("R", {"X"});
  a.insert({Value{std::int64_t{1}}});
  a.insert({Value{std::int64_t{2}}});
  Relation b("R", {"X"});
  b.insert({Value{std::int64_t{2}}});
  b.insert({Value{std::int64_t{3}}});
  EXPECT_EQ(set_union(a, b).size(), 3u);
  EXPECT_EQ(set_difference(a, b).size(), 1u);
  EXPECT_EQ(set_intersection(a, b).size(), 1u);
  Relation c("R", {"Y"});
  EXPECT_THROW(set_union(a, c), ModelError);
}

// ----------------------------------------------------------------- query

TEST(QueryTest, NamedEvaluation) {
  Database db;
  db.put(people());
  Query q("ages", [](const Database& d) { return project(d.get("People"), {"Age"}); });
  EXPECT_EQ(q.name(), "ages");
  EXPECT_EQ(q(db).size(), 2u);
  EXPECT_THROW(Query("", [](const Database& d) { return d.get("People"); }),
               ModelError);
}

TEST(QueryCatalogTest, ResolvesByName) {
  QueryCatalog catalog;
  catalog.add(Query("q1", [](const Database& d) { return d.get("People"); }));
  EXPECT_TRUE(catalog.has("q1"));
  EXPECT_FALSE(catalog.has("q2"));
  EXPECT_THROW(catalog.get("q2"), ModelError);
  EXPECT_THROW(
      catalog.add(Query("q1", [](const Database& d) { return d.get("X"); })),
      ModelError);
}

// -------------------------------------------------- Figure 1 / Figure 2

TEST(NgcTest, Figure1HasExactShape) {
  const auto db = ngc::figure1_instance();
  EXPECT_EQ(db.schema(), (std::vector<std::string>{"Exhibitions", "Schedules"}));
  const auto& ex = db.get("Exhibitions");
  EXPECT_EQ(ex.size(), 6u);
  EXPECT_EQ(ex.arity(), 3u);
  EXPECT_EQ(ex.sort(),
            (std::vector<Attribute>{"Title", "Description", "Artist"}));
  const auto& sch = db.get("Schedules");
  EXPECT_EQ(sch.size(), 3u);
  EXPECT_EQ(sch.sort(), (std::vector<Attribute>{"City", "Title", "Date"}));
}

TEST(NgcTest, Figure2QueryReproducesThePaper) {
  const auto db = ngc::figure1_instance();
  const auto result = ngc::november_artists_query()(db);
  const auto expected = ngc::figure2_expected();
  EXPECT_EQ(result.sort(), expected.sort());
  ASSERT_EQ(result.size(), expected.size());
  for (const auto& t : expected.tuples())
    EXPECT_TRUE(result.contains(t)) << to_string(t[0]) << " missing";
  // Row order matches Figure 2 as printed.
  EXPECT_EQ(result.tuples()[0][0], Value{std::string("Schaefer")});
  EXPECT_EQ(result.tuples()[1][0], Value{std::string("Aelbrecht")});
  EXPECT_EQ(result.tuples()[2][0], Value{std::string("Dieric")});
}

TEST(NgcTest, OctoberExhibitionExcluded) {
  const auto db = ngc::figure1_instance();
  const auto result = ngc::november_artists_query()(db);
  for (const auto& t : result.tuples()) {
    EXPECT_NE(t[1], Value{std::string("Mexico City")});
    EXPECT_NE(t[0], Value{std::string("Thompson")});
  }
}

TEST(NgcTest, RenderingMentionsAllArtists) {
  const auto text = ngc::figure1_instance().to_string();
  for (const char* artist : {"Thompson", "Harris", "MacDonald", "Schaefer",
                             "Aelbrecht", "Dieric"})
    EXPECT_NE(text.find(artist), std::string::npos) << artist;
}

}  // namespace
