// Tests for the section 5.2.2-5.2.5 word encodings, the R_{n,u} validity
// conditions, the [12] metrics, and the distributed decomposition.

#include <gtest/gtest.h>

#include "rtw/adhoc/metrics.hpp"
#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/route_acceptor.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/core/error.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::adhoc;
using rtw::core::Certificate;
using rtw::core::Symbol;

std::unique_ptr<Mobility> at(double x, double y) {
  return std::make_unique<Stationary>(Vec2{x, y});
}

Network line4() {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(at(10.0 * i, 0));
  return Network(std::move(nodes), 12.0);
}

// ------------------------------------------------------------- node words

TEST(NodeWordTest, CarriesInvariantsThenPositions) {
  const auto net = line4();
  const auto h1 = node_word(net, 1);
  EXPECT_TRUE(h1.infinite());
  EXPECT_EQ(h1.well_behaved(), Certificate::Proven);
  // First group at time 0: $ id @ q_i @ x @ y $.
  EXPECT_EQ(h1.at(0).sym, rtw::core::marks::dollar());
  EXPECT_EQ(h1.at(1).sym, Symbol::nat(1));
  EXPECT_EQ(h1.at(3).sym, Symbol::nat(12));  // radio range as q_i
  // Position fixes carry increasing times.
  rtw::core::Tick prev = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_GE(h1.at(i).time, prev);
    prev = h1.at(i).time;
  }
  EXPECT_THROW(node_word(net, 9), rtw::core::ModelError);
}

TEST(NodeWordTest, NetworkWordMergesAllNodes) {
  const auto net = line4();
  const auto an = network_word(net);
  EXPECT_TRUE(an.infinite());
  EXPECT_EQ(an.well_behaved(), Certificate::Proven);
  // All four node ids appear in the time-0 block.
  std::set<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const auto ts = an.at(i);
    if (ts.time > 0) break;
    if (ts.sym.is_nat() && ts.sym.as_nat() < 4) ids.insert(ts.sym.as_nat());
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(MessageWordTest, EncodesTimeSrcDstBody) {
  const HopMessage hop{5, 6, 2, 3, 77};
  const auto m = message_word(hop);
  ASSERT_TRUE(m.length().has_value());
  EXPECT_EQ(m.at(0).sym, rtw::core::marks::dollar());
  EXPECT_EQ(m.at(0).time, 5u);
  EXPECT_EQ(m.at(1).sym, Symbol::nat(5));  // e(t)
  EXPECT_EQ(m.at(3).sym, Symbol::nat(2));  // e(s)
  EXPECT_EQ(m.at(5).sym, Symbol::nat(3));  // e(d)
  EXPECT_EQ(m.at(7).sym, Symbol::nat(77)); // e(b)
  const auto r = receive_word(hop);
  EXPECT_EQ(r.at(0).time, 6u);  // receive event carries t'
}

// ----------------------------------------------------------- route traces

RouteTrace line_trace() {
  RouteTrace trace;
  trace.source = 0;
  trace.destination = 3;
  trace.body = 9;
  trace.originated_at = 4;
  trace.hops = {{4, 5, 0, 1, 9}, {5, 6, 1, 2, 9}, {6, 7, 2, 3, 9}};
  trace.delivered = true;
  return trace;
}

TEST(RouteValidationTest, ValidChainPasses) {
  const auto net = line4();
  EXPECT_EQ(validate_route(line_trace(), net), std::nullopt);
}

TEST(RouteValidationTest, Condition1Violations) {
  const auto net = line4();
  auto t = line_trace();
  t.hops[1].body = 8;  // body mismatch
  EXPECT_TRUE(validate_route(t, net).has_value());
  t = line_trace();
  t.source = 2;
  EXPECT_TRUE(validate_route(t, net).has_value());
  t = line_trace();
  t.destination = 1;
  EXPECT_TRUE(validate_route(t, net).has_value());
  t = line_trace();
  t.originated_at = 5;  // first hop precedes generation
  EXPECT_TRUE(validate_route(t, net).has_value());
}

TEST(RouteValidationTest, Condition2Violations) {
  const auto net = line4();
  auto t = line_trace();
  t.hops[1].src = 3;  // chain break d_1 != s_2
  EXPECT_TRUE(validate_route(t, net).has_value());
  t = line_trace();
  t.hops[1].sent_at = 9;  // t'_1 != t_2
  t.hops[1].received_at = 10;
  EXPECT_TRUE(validate_route(t, net).has_value());
  t = line_trace();
  t.hops[1] = {5, 6, 1, 3, 9};  // 1 -> 3 out of range
  t.hops[2] = {6, 7, 3, 3, 9};
  EXPECT_TRUE(validate_route(t, net).has_value());
}

TEST(RouteValidationTest, Condition3Violation) {
  const auto net = line4();
  auto t = line_trace();
  t.delivered = false;
  const auto why = validate_route(t, net);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("condition 3"), std::string::npos);
}

TEST(RouteValidationTest, GranularityEnforced) {
  const auto net = line4();
  auto t = line_trace();
  t.hops[0].received_at = 7;  // 3-tick hop breaks section 5.2.1
  t.hops[1].sent_at = 7;
  EXPECT_TRUE(validate_route(t, net).has_value());
}

// ------------------------------------------- extraction from simulations

class ExtractionFromProtocol : public ::testing::TestWithParam<int> {};

ProtocolFactory factory_for(int which) {
  switch (which) {
    case 0:
      return flooding_factory();
    case 1:
      return dsdv_factory(10);
    case 2:
      return dsr_factory();
    default:
      return aodv_factory();
  }
}

TEST_P(ExtractionFromProtocol, SimulatedRouteIsValidWord) {
  // Every protocol's actual routing of a message, extracted from the
  // trace, must be a member of R_{n,u} -- the paper's claim that "the
  // actual routing ... is modeled by a word in the corresponding routing
  // problem".
  const auto net = line4();
  Simulator sim(net, factory_for(GetParam()));
  sim.schedule({1, 0, 3, 40});
  const auto result = sim.run(140);
  const auto trace = extract_route(result, net, 1);
  ASSERT_TRUE(trace.delivered) << "protocol " << GetParam();
  EXPECT_EQ(trace.source, 0u);
  EXPECT_EQ(trace.destination, 3u);
  const auto why = validate_route(trace, net);
  EXPECT_EQ(why, std::nullopt) << *why;
  EXPECT_EQ(trace.hops.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ExtractionFromProtocol,
                         ::testing::Values(0, 1, 2, 3));

TEST(ExtractionTest, UndeliveredTraceFailsCondition3) {
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(500, 0));
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, aodv_factory());
  sim.schedule({1, 0, 1, 5});
  const auto result = sim.run(100);
  const auto trace = extract_route(result, net, 1);
  EXPECT_FALSE(trace.delivered);
  EXPECT_TRUE(validate_route(trace, net).has_value());
}

TEST(ExtractionTest, RouteInstanceWordIsWellBehaved) {
  const auto net = line4();
  Simulator sim(net, dsdv_factory(10));
  sim.schedule({1, 0, 3, 40});
  const auto result = sim.run(100);
  const auto trace = extract_route(result, net, 1);
  const auto word = route_instance_word(trace, net);
  EXPECT_TRUE(word.infinite());
  EXPECT_EQ(word.well_behaved(), Certificate::Proven);
  rtw::core::Tick prev = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_GE(word.at(i).time, prev) << "i=" << i;
    prev = word.at(i).time;
  }
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, PerfectDeliveryOnStaticLine) {
  const auto net = line4();
  Simulator sim(net, dsdv_factory(10));
  std::vector<DataSpec> messages = {{1, 0, 3, 50}, {2, 3, 0, 60}, {3, 1, 2, 70}};
  for (const auto& m : messages) sim.schedule(m);
  const auto result = sim.run(150);
  const auto metrics = compute_metrics(result, net, messages);
  EXPECT_EQ(metrics.originated, 3u);
  EXPECT_EQ(metrics.delivered, 3u);
  EXPECT_DOUBLE_EQ(metrics.delivery_ratio(), 1.0);
  // DSDV on a static line takes shortest paths: hop difference 0.
  EXPECT_DOUBLE_EQ(metrics.hop_difference.mean(), 0.0);
  EXPECT_EQ(metrics.path_optimality.count(0), 3u);
}

TEST(MetricsTest, FloodingOverheadExceedsDsdv) {
  // Diamond topology: flooding wastes the redundant branch.
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(10, 5));
  nodes.push_back(at(10, -5));
  nodes.push_back(at(20, 0));
  Network net(std::move(nodes), 12.0);
  std::vector<DataSpec> messages = {{1, 0, 3, 50}};
  Simulator f(net, flooding_factory());
  f.schedule(messages[0]);
  const auto flood = compute_metrics(f.run(150), net, messages);
  Simulator d(net, dsdv_factory(10));
  d.schedule(messages[0]);
  const auto dsdv = compute_metrics(d.run(150), net, messages);
  EXPECT_GT(flood.data_transmissions, dsdv.data_transmissions);
  EXPECT_DOUBLE_EQ(flood.delivery_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(dsdv.delivery_ratio(), 1.0);
}

TEST(MetricsTest, EmptyRunIsZero) {
  const auto net = line4();
  Simulator sim(net, flooding_factory());
  const auto metrics = compute_metrics(sim.run(10), net, {});
  EXPECT_DOUBLE_EQ(metrics.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.overhead_per_message(), 0.0);
}

// ------------------------------------------------------ distributed views

TEST(DistributedTest, DecompositionCoversEveryMessageExactlyOnce) {
  const auto trace = line_trace();
  const auto views = decompose(trace, 4);
  ASSERT_EQ(views.size(), 4u);
  std::size_t total_sent = 0, total_received = 0;
  for (const auto& [local, remote] : views) {
    total_sent += local.sent.size();
    total_received += remote.received.size();
    for (const auto& hop : local.sent) EXPECT_EQ(hop.src, local.node);
    for (const auto& hop : remote.received) EXPECT_EQ(hop.dst, remote.node);
  }
  EXPECT_EQ(total_sent, trace.hops.size());
  EXPECT_EQ(total_received, trace.hops.size());
}

TEST(DistributedTest, MBetweenSelectsPairs) {
  const auto trace = line_trace();
  EXPECT_EQ(m_between(trace, 0, 1).size(), 1u);
  EXPECT_EQ(m_between(trace, 1, 2).size(), 1u);
  EXPECT_EQ(m_between(trace, 0, 2).size(), 0u);
  EXPECT_EQ(m_between(trace, 3, 0).size(), 0u);
}

TEST(DistributedTest, ViewWordsAreWellBehaved) {
  const auto net = line4();
  const auto views = decompose(line_trace(), 4);
  for (const auto& [local, remote] : views) {
    const auto h = view_word(net, local, remote);
    EXPECT_TRUE(h.infinite());
    EXPECT_EQ(h.well_behaved(), Certificate::Proven);
  }
}

TEST(DistributedTest, LocalViewKnowsNothingRemote) {
  // "Besides this information, no knowledge about the external world
  // exists": node 3's local view contains no hop it did not send.
  const auto views = decompose(line_trace(), 4);
  EXPECT_TRUE(views[3].first.sent.empty());       // node 3 never sends
  EXPECT_EQ(views[3].second.received.size(), 1u); // receives the last hop
  EXPECT_EQ(views[0].second.received.size(), 0u); // node 0 receives nothing
}

}  // namespace

// ------------------------------- the section 5.2.5 word-level acceptor

namespace word_acceptor {

using namespace rtw::adhoc;
using rtw::core::RunOptions;

std::unique_ptr<Mobility> fixed(double x, double y) {
  return std::make_unique<Stationary>(Vec2{x, y});
}

Network wa_line4() {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(fixed(10.0 * i, 0));
  return Network(std::move(nodes), 12.0);
}

TEST(RouteWordAcceptorTest, AcceptsASimulatedRouteWord) {
  const auto net = wa_line4();
  Simulator sim(net, dsdv_factory(10));
  sim.schedule({777, 0, 3, 40});
  const auto result = sim.run(100);
  const auto trace = extract_route(result, net, 777);
  ASSERT_TRUE(trace.delivered);
  const auto word = route_instance_word(trace, net);

  RouteWordAcceptor acceptor(net, {0, 3, 777, 40});
  RunOptions options;
  options.horizon = 400;
  const auto r = rtw::engine::run(acceptor, word, options).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(acceptor.hops_seen(), trace.hops.size());
}

TEST(RouteWordAcceptorTest, RejectsChainBreakInTheWord) {
  const auto net = wa_line4();
  RouteTrace trace;
  trace.source = 0;
  trace.destination = 3;
  trace.body = 777;
  trace.originated_at = 4;
  // d_1 != s_2: the chain teleports from node 1 to node 2's send.
  trace.hops = {{4, 5, 0, 1, 777}, {5, 6, 2, 3, 777}};
  trace.delivered = true;
  const auto word = route_instance_word(trace, net);
  RouteWordAcceptor acceptor(net, {0, 3, 777, 4});
  RunOptions options;
  options.horizon = 300;
  const auto r = rtw::engine::run(acceptor, word, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
}

TEST(RouteWordAcceptorTest, RejectsOutOfRangeHop) {
  const auto net = wa_line4();
  RouteTrace trace;
  trace.source = 0;
  trace.destination = 3;
  trace.body = 777;
  trace.originated_at = 4;
  trace.hops = {{4, 5, 0, 3, 777}};  // 0 -> 3 is out of range
  trace.delivered = true;
  const auto word = route_instance_word(trace, net);
  RouteWordAcceptor acceptor(net, {0, 3, 777, 4});
  RunOptions options;
  options.horizon = 300;
  const auto r = rtw::engine::run(acceptor, word, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
}

TEST(RouteWordAcceptorTest, UndeliveredWordRejectsAtHorizon) {
  // The network word alone (no message of body 777 at all): condition 3
  // can never be witnessed, the acceptor never locks.
  const auto net = wa_line4();
  const auto word = network_word(net);
  RouteWordAcceptor acceptor(net, {0, 3, 777, 4});
  RunOptions options;
  options.horizon = 200;
  const auto r = rtw::engine::run(acceptor, word, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(acceptor.hops_seen(), 0u);
}

TEST(RouteWordAcceptorTest, WrongSourceRejected) {
  const auto net = wa_line4();
  RouteTrace trace;
  trace.source = 1;  // chain starts at node 1, but u's source is 0
  trace.destination = 3;
  trace.body = 777;
  trace.originated_at = 4;
  trace.hops = {{4, 5, 1, 2, 777}, {5, 6, 2, 3, 777}};
  trace.delivered = true;
  const auto word = route_instance_word(trace, net);
  RouteWordAcceptor acceptor(net, {0, 3, 777, 4});
  RunOptions options;
  options.horizon = 300;
  const auto r = rtw::engine::run(acceptor, word, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
}

}  // namespace word_acceptor
