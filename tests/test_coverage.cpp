// Edge-case coverage batch: paths the module suites leave thin --
// recognition-acceptor corner cases, language combinators over the
// application languages, simulator bookkeeping, and distributed views
// including auxiliary traffic.

#include <gtest/gtest.h>

#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/dataacc/acceptor.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedWord;

// ----------------------------------------------- recognition corner cases

using namespace rtw::rtdb;

RtdbWordSpec tiny_spec() {
  RtdbWordSpec spec;
  spec.images.push_back({"x", 4, [](Tick t) {
                           return Value{static_cast<std::int64_t>(t)};
                         }});
  return spec;
}

QueryCatalog tiny_catalog() {
  QueryCatalog catalog;
  catalog.add(Query("names", [](const Database& db) {
    return project(db.get("Objects"), {"Name"});
  }));
  return catalog;
}

TEST(RecognitionEdgeTest, UnknownQueryNameFails) {
  AperiodicQuerySpec q;
  q.query = "no-such-query";
  q.candidate = {Value{std::string("x")}};
  q.issue_time = 8;
  const auto w = rtw::core::concat(build_dbB(tiny_spec()), build_aq(q));
  RecognitionAcceptor acceptor(tiny_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 400;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(acceptor.failed(), 1u);
}

TEST(RecognitionEdgeTest, WordWithoutQueryNeverDecides) {
  const auto w = build_dbB(tiny_spec());
  RecognitionAcceptor acceptor(tiny_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 300;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(acceptor.served() + acceptor.failed(), 0u);
}

TEST(RecognitionEdgeTest, PatienceBoundaryLocksAfterQuietWindow) {
  AperiodicQuerySpec q;
  q.query = "names";
  q.candidate = {Value{std::string("x")}};
  q.issue_time = 8;
  const auto w = rtw::core::concat(build_dbB(tiny_spec()), build_aq(q));
  RecognitionAcceptor acceptor(tiny_catalog(), linear_cost(), /*patience=*/16);
  rtw::core::RunOptions options;
  options.horizon = 400;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  // The lock arrives after the quiet patience window, not at first f.
  ASSERT_TRUE(r.first_f.has_value());
  EXPECT_GE(r.ticks, *r.first_f + 16);
}

TEST(RecognitionEdgeTest, CostModelZeroIsClampedToOne) {
  const auto cost = linear_cost();
  EXPECT_EQ(cost(0), 1u);
  EXPECT_EQ(cost(7), 7u);
}

// ----------------------------------- language combinators over app words

TEST(AppLanguageTest, UnionOfDeadlineAndDataaccLanguages) {
  using rtw::deadline::deadline_language;
  using rtw::dataacc::dataacc_language;
  const auto dl = deadline_language(
      std::make_shared<rtw::deadline::SortProblem>());
  const auto da = dataacc_language(
      std::make_shared<rtw::dataacc::RunningSum>(), {1, 1});
  const auto u = dl | da;
  // Union samples alternate between the factors; every one is a member.
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_TRUE(u.contains(u.sample(i))) << "sample " << i;
  // A word from neither language is excluded.
  EXPECT_FALSE(u.contains(TimedWord::text_at("junk", 0)));
}

TEST(AppLanguageTest, ComplementExcludesMembers) {
  using rtw::deadline::deadline_language;
  const auto dl = deadline_language(
      std::make_shared<rtw::deadline::ReverseProblem>());
  const auto w = dl.sample(2);
  EXPECT_TRUE(dl.contains(w));
  EXPECT_FALSE((~dl).contains(w));
}

// --------------------------------------------------- simulator bookkeeping

using namespace rtw::adhoc;

TEST(SimBookkeepingTest, SendAndReceiveCountsAreConsistent) {
  NetworkConfig config;
  config.nodes = 10;
  config.seed = 4;
  config.region = {100, 100};
  config.radio_range = 40;
  Network net(config);
  Simulator sim(net, flooding_factory());
  sim.schedule({1, 0, 5, 5});
  sim.schedule({2, 3, 7, 15});
  const auto result = sim.run(120);
  EXPECT_EQ(result.originated, 2u);
  EXPECT_EQ(result.sends.size(),
            result.data_transmissions + result.control_transmissions);
  // Every receive corresponds to some send at time - 1.
  for (const auto& recv : result.receives) {
    bool matched = false;
    for (const auto& send : result.sends) {
      if (send.time + 1 == recv.time &&
          send.packet.from == recv.packet.from &&
          send.packet.data_id == recv.packet.data_id) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "orphan receive at t=" << recv.time;
  }
}

TEST(SimBookkeepingTest, HopCountersIncrementPerRelay) {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i)
    nodes.push_back(std::make_unique<Stationary>(Vec2{10.0 * i, 0}));
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, flooding_factory());
  sim.schedule({1, 0, 3, 0});
  const auto result = sim.run(20);
  const auto delivery = result.delivery_of(1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->hops, 3u);
  // Each node's *first* data reception arrives over the forward chain:
  // hop count == node index on the line.  (Later receptions are the
  // flood's backwash with larger counts.)
  std::set<NodeId> seen;
  for (const auto& recv : result.receives) {
    if (recv.packet.kind != Packet::Kind::Data) continue;
    if (recv.by == 0) continue;  // the origin only hears backwash
    if (!seen.insert(recv.by).second) continue;
    EXPECT_EQ(recv.packet.hops_traveled, recv.by) << "node " << recv.by;
  }
}

// ----------------------------------- distributed views with aux traffic

TEST(DistributedAuxTest, DiscoveryTrafficLandsInLocalViews) {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i)
    nodes.push_back(std::make_unique<Stationary>(Vec2{10.0 * i, 0}));
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, dsr_factory());
  sim.schedule({1, 0, 3, 10});
  const auto result = sim.run(100);
  const auto trace = extract_route(result, net, 1);
  ASSERT_TRUE(trace.delivered);
  ASSERT_GT(trace.auxiliary.size(), 0u);  // the RREQ flood + RREP chain
  const auto views = decompose(trace, net.size());
  std::size_t aux_sent = 0;
  for (const auto& [local, remote] : views) aux_sent += local.sent.size();
  EXPECT_EQ(aux_sent, trace.hops.size() + trace.auxiliary.size());
}

// ----------------------------------------------- dataacc language edges

TEST(DataaccEdgeTest, EmptyProposedOutputRejects) {
  using namespace rtw::dataacc;
  DataAccInstance inst;
  inst.law = ArrivalLaw(3, 1.0, 0.0, 0.5);
  inst.datum = [](std::uint64_t j) { return Symbol::nat(j); };
  // proposed_output left empty: RunningSum's snapshot is never empty.
  DataAccAcceptor acceptor(std::make_unique<RunningSum>(), {1, 1});
  rtw::core::RunOptions options;
  options.horizon = 2000;
  const auto r =
      rtw::engine::run(acceptor, build_dataacc_word(inst), options).result;
  EXPECT_TRUE(r.exact);
  EXPECT_FALSE(r.accepted);
}

}  // namespace
