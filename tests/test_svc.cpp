// rtw::svc test suite: the serving layer and its equivalence theorem.
//
//   1. parse_prefix / serialize_elements: the bounded streaming parser the
//      wire codec is built on (satellite fix for the full-reparse gap).
//   2. The wire codec: framing round-trips, arbitrary chunking, partial
//      Feed-body streaming, sticky errors, frame-level fault application.
//   3. EngineOnlineAcceptor: the online/batch equivalence contract on
//      hand-picked words plus interface guarantees (monotonicity, verdict
//      latching, reset).
//   4. The tri-workload equivalence property: 500 seeded cases feeding
//      randomized deadline / rtdb / adhoc words symbol-by-symbol and
//      checking the final RunResult equals rtw::engine::run field by
//      field.
//   5. Session / SessionManager: stale filtering, lifecycle, explicit
//      backpressure, idle eviction, shard-count invariance (1 vs 8),
//      wire-driven operation.
//   6. The fault-injected soak: mangled frame streams through the decoder
//      into the manager, mirrored by a reference state machine --
//      asserting zero verdict divergences (scaled by RTW_SVC_SOAK_SECONDS
//      for the CI svc-soak job).

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "proptest.hpp"
#include "rtw/adhoc/mobility.hpp"
#include "rtw/adhoc/route_acceptor.hpp"
#include "rtw/adhoc/words.hpp"
#include "rtw/core/error.hpp"
#include "rtw/core/online.hpp"
#include "rtw/core/serialize.hpp"
#include "rtw/deadline/acceptor.hpp"
#include "rtw/deadline/online.hpp"
#include "rtw/deadline/word.hpp"
#include "rtw/engine/engine.hpp"
#include "rtw/obs/export.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/svc/service.hpp"
#include "rtw/svc/session.hpp"
#include "rtw/svc/wire.hpp"

namespace {

using namespace rtw::core;
using rtw::svc::Admit;
using rtw::svc::Decoder;
using rtw::svc::Priority;
using rtw::svc::SessionId;
using rtw::svc::SessionManager;
using rtw::svc::SessionReport;
using rtw::svc::IngressConfig;
using rtw::svc::ShardConfig;
using rtw::svc::WireEvent;

// ====================================================== 1. parse_prefix

TEST(ParsePrefix, ParsesCompleteTextAndReportsConsumption) {
  const std::string text = "a@1 <m>@3 7@9 'x'@12";
  const auto p = parse_prefix(text, 100);
  ASSERT_EQ(p.symbols.size(), 4u);
  EXPECT_EQ(p.consumed, text.size());
  EXPECT_EQ(p.symbols[0], (TimedSymbol{Symbol::chr('a'), 1}));
  EXPECT_EQ(p.symbols[1], (TimedSymbol{Symbol::marker("m"), 3}));
  EXPECT_EQ(p.symbols[2], (TimedSymbol{Symbol::nat(7), 9}));
  EXPECT_EQ(p.symbols[3], (TimedSymbol{Symbol::chr('x'), 12}));
}

TEST(ParsePrefix, HonorsTheSymbolBound) {
  const auto p = parse_prefix("a@1 b@2 c@3", 2);
  ASSERT_EQ(p.symbols.size(), 2u);
  // Consumption stops at the start of the unparsed third element (the
  // separator space is consumed eagerly).
  const auto rest = parse_prefix(std::string_view("a@1 b@2 c@3").substr(p.consumed), 10);
  ASSERT_EQ(rest.symbols.size(), 1u);
  EXPECT_EQ(rest.symbols[0], (TimedSymbol{Symbol::chr('c'), 3}));
}

TEST(ParsePrefix, HoldsBackGrowableTailWhenNotFinal) {
  // "a@3" is complete as a final chunk but the 3 could grow to 35.
  const auto partial = parse_prefix("b@1 a@3", 10, /*final_chunk=*/false);
  ASSERT_EQ(partial.symbols.size(), 1u);
  EXPECT_EQ(partial.symbols[0].time, 1u);
  const auto final = parse_prefix("b@1 a@3", 10, /*final_chunk=*/true);
  ASSERT_EQ(final.symbols.size(), 2u);
  EXPECT_EQ(final.symbols[1].time, 3u);
}

TEST(ParsePrefix, EverySplitPointOfAWordReassembles) {
  const std::vector<TimedSymbol> elements = {
      {Symbol::chr('a'), 1},  {Symbol::marker("wq"), 23},
      {Symbol::nat(456), 23}, {Symbol::chr('@'), 30},
      {Symbol::nat(0), 31},
  };
  const std::string text = serialize_elements(elements);
  for (std::size_t split = 0; split <= text.size(); ++split) {
    std::vector<TimedSymbol> got;
    std::string pending(text.substr(0, split));
    auto first = parse_prefix(pending, 100, /*final_chunk=*/false);
    got.insert(got.end(), first.symbols.begin(), first.symbols.end());
    pending.erase(0, first.consumed);
    pending.append(text.substr(split));
    auto second = parse_prefix(pending, 100, /*final_chunk=*/true);
    EXPECT_EQ(second.consumed, pending.size()) << "split=" << split;
    got.insert(got.end(), second.symbols.begin(), second.symbols.end());
    EXPECT_EQ(got, elements) << "split=" << split;
  }
}

TEST(ParsePrefix, StopsWithoutConsumingMalformedInput) {
  const auto p = parse_prefix("a@1 b!2", 10);
  ASSERT_EQ(p.symbols.size(), 1u);
  EXPECT_EQ(p.consumed, 4u);  // "a@1 " only; "b!2" untouched
  const auto q = parse_prefix("'unterminated", 10);
  EXPECT_TRUE(q.symbols.empty());
  EXPECT_EQ(q.consumed, 0u);
}

TEST(ParsePrefix, RoundTripsSerializeElements) {
  rtw::sim::Xoshiro256ss rng(99);
  for (int round = 0; round < 50; ++round) {
    std::vector<TimedSymbol> elements;
    Tick t = 0;
    const auto len = rng.uniform(std::uint64_t{12});
    for (std::uint64_t i = 0; i < len; ++i) {
      t += rng.uniform(std::uint64_t{9});
      switch (rng.uniform(std::uint64_t{3})) {
        case 0:
          elements.push_back({Symbol::chr(static_cast<char>(
                                  'a' + rng.uniform(std::uint64_t{26}))),
                              t});
          break;
        case 1:
          elements.push_back({Symbol::nat(rng.uniform(std::uint64_t{1000})), t});
          break;
        default:
          elements.push_back({rtw::core::marks::dollar(), t});
      }
    }
    const auto text = serialize_elements(elements);
    const auto parsed = parse_prefix(text, elements.size() + 1);
    EXPECT_EQ(parsed.symbols, elements);
    EXPECT_EQ(parsed.consumed, text.size());
  }
}

// ====================================================== 2. wire codec

std::vector<TimedSymbol> sample_elements() {
  return {{Symbol::chr('a'), 1},
          {Symbol::marker("wq"), 4},
          {Symbol::nat(19), 4},
          {Symbol::chr('z'), 9}};
}

TEST(WireCodec, FramesRoundTrip) {
  const auto elements = sample_elements();
  std::string stream = rtw::svc::encode_open(7, "deadline");
  stream += rtw::svc::encode_feed(7, elements);
  stream += rtw::svc::encode_close(7, StreamEnd::Truncated);

  Decoder decoder;
  decoder.push(stream);
  ASSERT_TRUE(decoder.ok()) << decoder.error();

  WireEvent ev;
  ASSERT_TRUE(decoder.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Open);
  EXPECT_EQ(ev.session, 7u);
  EXPECT_EQ(ev.profile, "deadline");

  std::vector<TimedSymbol> got;
  while (decoder.next(ev) && ev.kind == WireEvent::Kind::Symbols)
    got.insert(got.end(), ev.symbols.begin(), ev.symbols.end());
  EXPECT_EQ(got, elements);
  EXPECT_EQ(ev.kind, WireEvent::Kind::Close);
  EXPECT_EQ(ev.end, StreamEnd::Truncated);
  EXPECT_EQ(decoder.frames(), 3u);
}

TEST(WireCodec, EveryChunkingDecodesIdentically) {
  const auto elements = sample_elements();
  std::string stream = rtw::svc::encode_open(3, "p");
  stream += rtw::svc::encode_feed(3, elements);
  stream += rtw::svc::encode_feed(3, {});  // empty body is a valid frame
  stream += rtw::svc::encode_close(3);

  for (std::size_t chunk = 1; chunk <= 13; ++chunk) {
    Decoder decoder;
    for (std::size_t off = 0; off < stream.size(); off += chunk)
      decoder.push(std::string_view(stream).substr(
          off, std::min(chunk, stream.size() - off)));
    ASSERT_TRUE(decoder.ok()) << "chunk=" << chunk << ": " << decoder.error();
    std::vector<TimedSymbol> got;
    bool open = false, close = false;
    WireEvent ev;
    while (decoder.next(ev)) {
      if (ev.kind == WireEvent::Kind::Open) open = true;
      if (ev.kind == WireEvent::Kind::Close) close = true;
      if (ev.kind == WireEvent::Kind::Symbols)
        got.insert(got.end(), ev.symbols.begin(), ev.symbols.end());
    }
    EXPECT_TRUE(open);
    EXPECT_TRUE(close);
    EXPECT_EQ(got, elements) << "chunk=" << chunk;
    EXPECT_EQ(decoder.frames(), 4u);
  }
}

TEST(WireCodec, PartialFeedBodySurfacesSymbolsEarly) {
  const auto frame = rtw::svc::encode_feed(1, sample_elements());
  Decoder decoder;
  // Push everything except the last 3 bytes: the first elements must
  // already be decodable even though the frame is incomplete.
  decoder.push(std::string_view(frame).substr(0, frame.size() - 3));
  WireEvent ev;
  ASSERT_TRUE(decoder.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Symbols);
  EXPECT_FALSE(ev.symbols.empty());
  EXPECT_EQ(decoder.frames(), 0u);  // frame itself still open
  decoder.push(std::string_view(frame).substr(frame.size() - 3));
  std::vector<TimedSymbol> rest;
  while (decoder.next(ev)) rest.insert(rest.end(), ev.symbols.begin(), ev.symbols.end());
  EXPECT_EQ(decoder.frames(), 1u);
}

TEST(WireCodec, ErrorsAreSticky) {
  {
    Decoder decoder;
    std::string bad = rtw::svc::encode_open(1, "x");
    bad[12] = 99;  // opcode byte -> unknown
    decoder.push(bad);
    EXPECT_FALSE(decoder.ok());
    decoder.push(rtw::svc::encode_open(2, "y"));
    WireEvent ev;
    EXPECT_FALSE(decoder.next(ev));
  }
  {
    Decoder small(/*max_frame_bytes=*/16);
    small.push(rtw::svc::encode_feed(1, sample_elements()));
    EXPECT_FALSE(small.ok());
  }
  {
    Decoder decoder;
    // A Feed body that is not serialize_elements text.
    decoder.push(rtw::svc::encode_open(1, "x"));
    std::string corrupt = rtw::svc::encode_feed(1, {{Symbol::chr('a'), 1}});
    corrupt[corrupt.size() - 2] = '!';
    decoder.push(corrupt);
    EXPECT_FALSE(decoder.ok());
  }
}

TEST(WireCodec, NoopFaultPlanIsIdentity) {
  std::vector<std::string> frames;
  for (SessionId id = 0; id < 6; ++id)
    frames.push_back(rtw::svc::encode_open(id, "p"));
  rtw::sim::FaultPlan noop;
  rtw::sim::FaultCounters counters;
  const auto out = rtw::svc::apply_faults(frames, noop, &counters);
  EXPECT_EQ(out, frames);
  EXPECT_TRUE(counters.empty());
}

TEST(WireCodec, FaultedFramesAreDeterministicAndCounted) {
  std::vector<std::string> frames;
  for (SessionId id = 0; id < 64; ++id)
    frames.push_back(rtw::svc::encode_open(id, "p"));
  rtw::sim::FaultPlan plan;
  plan.seed = 0xfeedULL;
  plan.link.drop = 0.25;
  plan.link.duplicate = 0.25;
  plan.link.delay = 0.5;
  plan.link.max_delay = 4;
  rtw::sim::FaultCounters c1, c2;
  const auto a = rtw::svc::apply_faults(frames, plan, &c1);
  const auto b = rtw::svc::apply_faults(frames, plan, &c2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(c1, c2);
  EXPECT_GT(c1.injected(), 0u);
  EXPECT_EQ(a.size(), frames.size() - c1.dropped + c1.duplicated);
}

TEST(WireCodec, FeedBatchDecodesAsExactlyOneEvent) {
  const auto elements = sample_elements();
  const auto frame = rtw::svc::encode_feed_batch(5, elements);
  Decoder decoder;
  // Unlike Feed, a FeedBatch body never surfaces early: the run is one
  // all-or-nothing admission unit, so nothing decodes until the frame
  // completes.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.push(std::string_view(frame).substr(i, 1));
    WireEvent probe;
    ASSERT_FALSE(decoder.next(probe)) << "event surfaced at byte " << i;
  }
  decoder.push(std::string_view(frame).substr(frame.size() - 1));
  ASSERT_TRUE(decoder.ok()) << decoder.error();
  WireEvent ev;
  ASSERT_TRUE(decoder.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::Symbols);
  EXPECT_EQ(ev.session, 5u);
  EXPECT_EQ(ev.symbols, elements);
  EXPECT_FALSE(decoder.next(ev));
  EXPECT_EQ(decoder.frames(), 1u);
}

TEST(WireCodec, MalformedFeedBatchBodyIsFatal) {
  auto frame = rtw::svc::encode_feed_batch(1, sample_elements());
  frame[frame.size() - 2] = '!';
  Decoder decoder;
  decoder.push(frame);
  EXPECT_FALSE(decoder.ok());
}

TEST(WireCodec, OpenPriorityRoundTrips) {
  using rtw::svc::Priority;
  // Normal emits the PR-5 opcode: priority-free streams stay
  // byte-identical to the old format.
  EXPECT_EQ(rtw::svc::encode_open(3, "p", Priority::Normal),
            rtw::svc::encode_open(3, "p"));
  for (const auto priority : {Priority::Low, Priority::High}) {
    Decoder decoder;
    decoder.push(rtw::svc::encode_open(9, "profile!", priority));
    ASSERT_TRUE(decoder.ok()) << decoder.error();
    WireEvent ev;
    ASSERT_TRUE(decoder.next(ev));
    EXPECT_EQ(ev.kind, WireEvent::Kind::Open);
    EXPECT_EQ(ev.session, 9u);
    EXPECT_EQ(ev.priority, priority);
    EXPECT_EQ(ev.profile, "profile!");
  }
}

TEST(WireCodec, OpenPriorityRejectsUnknownPriorityByte) {
  auto frame = rtw::svc::encode_open(1, "p", rtw::svc::Priority::High);
  frame[13] = 9;  // the priority byte, right after the opcode
  Decoder decoder;
  decoder.push(frame);
  EXPECT_FALSE(decoder.ok());
}

/// Hand-assembles a frame: [u32le len][u64le session][u8 op][body].
std::string raw_frame(std::uint8_t op, std::string_view body,
                      SessionId session = 1) {
  std::string frame;
  const std::uint32_t len = static_cast<std::uint32_t>(9 + body.size());
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  for (int i = 0; i < 8; ++i)
    frame.push_back(static_cast<char>((session >> (8 * i)) & 0xff));
  frame.push_back(static_cast<char>(op));
  frame.append(body);
  return frame;
}

TEST(WireCodec, OpToStringIsExhaustive) {
  using rtw::svc::Op;
  // Every enumerator prints a distinct, non-empty, non-fallback name.
  std::set<std::string> names;
  for (const auto op : {Op::Open, Op::Feed, Op::Close, Op::CloseTruncated,
                        Op::FeedBatch, Op::OpenPri, Op::Hello, Op::HelloAck,
                        Op::Verdict, Op::ShedNotice}) {
    const auto name = rtw::svc::to_string(op);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find("Op("), std::string::npos) << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 10u);
  // Out-of-range values fall back to a numeric form instead of aliasing.
  EXPECT_NE(rtw::svc::to_string(static_cast<Op>(99)).find("99"),
            std::string::npos);
}

TEST(WireCodec, HelloFramesRoundTripEveryVersionRange) {
  for (std::uint8_t lo = 0; lo <= 2; ++lo) {
    for (std::uint8_t hi = lo; hi <= 3; ++hi) {
      Decoder decoder;
      decoder.push(rtw::svc::encode_hello(lo, hi));
      ASSERT_TRUE(decoder.ok()) << decoder.error();
      WireEvent ev;
      ASSERT_TRUE(decoder.next(ev));
      EXPECT_EQ(ev.kind, WireEvent::Kind::Hello);
      EXPECT_EQ(ev.version_min, lo);
      EXPECT_EQ(ev.version_max, hi);
    }
  }
  Decoder decoder;
  decoder.push(rtw::svc::encode_hello_ack(rtw::svc::kWireVersion));
  WireEvent ev;
  ASSERT_TRUE(decoder.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::HelloAck);
  EXPECT_EQ(ev.version, rtw::svc::kWireVersion);
}

TEST(WireCodec, VerdictFramesRoundTripEveryEnumerator) {
  for (const auto verdict :
       {Verdict::Undetermined, Verdict::Accepting, Verdict::Rejecting}) {
    for (const bool exact : {false, true}) {
      for (const bool evicted : {false, true}) {
        Decoder decoder;
        decoder.push(rtw::svc::encode_verdict(77, verdict, exact, evicted,
                                              123456789, 42));
        ASSERT_TRUE(decoder.ok()) << decoder.error();
        WireEvent ev;
        ASSERT_TRUE(decoder.next(ev));
        EXPECT_EQ(ev.kind, WireEvent::Kind::Verdict);
        EXPECT_EQ(ev.session, 77u);
        EXPECT_EQ(ev.verdict, verdict);
        EXPECT_EQ(ev.exact, exact);
        EXPECT_EQ(ev.evicted, evicted);
        EXPECT_EQ(ev.fed, 123456789u);
        EXPECT_EQ(ev.stale, 42u);
      }
    }
  }
}

TEST(WireCodec, ShedNoticeFramesRoundTripEveryEnumerator) {
  using rtw::svc::AdmitResult;
  using rtw::svc::ShedReason;
  for (const auto admit : {Admit::Accepted, Admit::Shed, Admit::Blocked}) {
    for (const auto reason :
         {ShedReason::None, ShedReason::RingFull, ShedReason::SessionBound,
          ShedReason::Priority}) {
      Decoder decoder;
      decoder.push(
          rtw::svc::encode_shed(5, AdmitResult{admit, reason}, 999));
      ASSERT_TRUE(decoder.ok()) << decoder.error();
      WireEvent ev;
      ASSERT_TRUE(decoder.next(ev));
      EXPECT_EQ(ev.kind, WireEvent::Kind::Shed);
      EXPECT_EQ(ev.session, 5u);
      EXPECT_EQ(ev.admit.admit, admit);
      EXPECT_EQ(ev.admit.reason, reason);
      EXPECT_EQ(ev.shed_symbols, 999u);
    }
  }
}

TEST(WireCodec, UnknownOpsAreTypedRejections) {
  using rtw::svc::DecodeError;
  for (const std::uint8_t op : {std::uint8_t{0}, std::uint8_t{12},
                                std::uint8_t{99}, std::uint8_t{255}}) {
    Decoder decoder;
    decoder.push(raw_frame(op, "body"));
    EXPECT_FALSE(decoder.ok());
    EXPECT_EQ(decoder.error_code(), DecodeError::UnknownOp) << unsigned(op);
    WireEvent ev;
    EXPECT_FALSE(decoder.next(ev));
    // Sticky: later well-formed frames stay rejected.
    decoder.push(rtw::svc::encode_open(1, "x"));
    EXPECT_FALSE(decoder.next(ev));
  }
}

TEST(WireCodec, MalformedV1BodiesAreTypedRejections) {
  using rtw::svc::DecodeError;
  const auto expect_malformed = [](std::string frame, const char* what) {
    Decoder decoder;
    decoder.push(frame);
    EXPECT_FALSE(decoder.ok()) << what;
    EXPECT_EQ(decoder.error_code(), DecodeError::MalformedBody) << what;
  };
  // Hello with an inverted range.
  expect_malformed(raw_frame(7, std::string("\x02\x01", 2)),
                   "hello min > max");
  // Hello with the wrong body size.
  expect_malformed(raw_frame(7, std::string("\x01", 1)), "hello short");
  // Verdict body truncated to 5 of 19 bytes.
  expect_malformed(raw_frame(9, std::string(5, '\0')), "verdict short");
  // Verdict byte outside core::Verdict.
  {
    std::string body(19, '\0');
    body[0] = 7;
    expect_malformed(raw_frame(9, body), "verdict enum");
  }
  // ShedNotice admit byte outside Admit.
  {
    std::string body(10, '\0');
    body[0] = 7;
    expect_malformed(raw_frame(10, body), "shed admit enum");
  }
  // ShedNotice reason byte outside ShedReason.
  {
    std::string body(10, '\0');
    body[1] = 9;
    expect_malformed(raw_frame(10, body), "shed reason enum");
  }
  // Typed names for the error enum itself (UI/log surface).
  std::set<std::string> names;
  for (const auto e :
       {DecodeError::None, DecodeError::ShortFrame, DecodeError::Oversized,
        DecodeError::UnknownOp, DecodeError::MalformedBody}) {
    const auto name = rtw::svc::to_string(e);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(WireCodec, SubmitQueryRoundTrips) {
  const std::string query = "within(4){ a ; (b | c)+ }";
  const std::string frame = rtw::svc::encode_submit_query(42, query);
  Decoder decoder;
  decoder.push(frame);
  ASSERT_TRUE(decoder.ok()) << decoder.error();
  WireEvent ev;
  ASSERT_TRUE(decoder.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::SubmitQuery);
  EXPECT_EQ(ev.session, 42u);
  EXPECT_EQ(ev.profile, query);
  EXPECT_EQ(decoder.frames(), 1u);

  // Byte-at-a-time chunking decodes to the same single event.
  Decoder slow;
  for (char c : frame) slow.push(std::string_view(&c, 1));
  ASSERT_TRUE(slow.ok()) << slow.error();
  ASSERT_TRUE(slow.next(ev));
  EXPECT_EQ(ev.kind, WireEvent::Kind::SubmitQuery);
  EXPECT_EQ(ev.profile, query);
}

TEST(WireCodec, MalformedSubmitQueryIsAStickyTypedRejection) {
  using rtw::svc::DecodeError;
  for (const char* bad : {"", "a ;", "within(){x}", "(a", "qq"}) {
    Decoder decoder;
    decoder.push(rtw::svc::encode_submit_query(5, bad));
    EXPECT_FALSE(decoder.ok()) << '"' << bad << '"';
    EXPECT_EQ(decoder.error_code(), DecodeError::MalformedBody)
        << '"' << bad << '"';
    EXPECT_NE(decoder.error().find("malformed query"), std::string::npos);
    // Sticky: a later well-formed frame must not resurrect the stream.
    decoder.push(rtw::svc::encode_submit_query(6, "a | b"));
    WireEvent ev;
    EXPECT_FALSE(decoder.next(ev));
  }
}

TEST(AdmitApi, ToStringIsExhaustive) {
  using rtw::svc::AdmitResult;
  using rtw::svc::ShedReason;
  std::set<std::string> names;
  for (const auto a : {Admit::Accepted, Admit::Shed, Admit::Blocked}) {
    const auto name = rtw::svc::to_string(a);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 3u);
  names.clear();
  for (const auto r : {ShedReason::None, ShedReason::RingFull,
                       ShedReason::SessionBound, ShedReason::Priority}) {
    const auto name = rtw::svc::to_string(r);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 4u);
  // The structured form prints outcome and reason together.
  const auto both = rtw::svc::to_string(
      AdmitResult{Admit::Shed, ShedReason::RingFull});
  EXPECT_NE(both.find(rtw::svc::to_string(Admit::Shed)), std::string::npos);
  EXPECT_NE(both.find(rtw::svc::to_string(ShedReason::RingFull)),
            std::string::npos);
}

TEST(AdmitApi, AdmitResultConvertsLikeTheOldEnum) {
  using rtw::svc::AdmitResult;
  using rtw::svc::ShedReason;
  constexpr AdmitResult ok{};
  static_assert(ok.accepted());
  static_assert(ok == Admit::Accepted);
  constexpr AdmitResult shed{Admit::Shed, ShedReason::SessionBound};
  static_assert(!shed.accepted());
  static_assert(shed == Admit::Shed);
  EXPECT_EQ(shed.reason, ShedReason::SessionBound);
}

// ================================== 3. online/batch equivalence machinery

/// The engine delivers exactly the symbols timestamped within the horizon;
/// a finite word it exhausts ends the stream (EndOfWord), anything else is
/// a truncation at the horizon.
struct StreamPrefix {
  std::vector<TimedSymbol> symbols;
  StreamEnd end = StreamEnd::Truncated;
};

StreamPrefix stream_prefix(const TimedWord& word, Tick horizon,
                           std::uint64_t cap = 200000) {
  StreamPrefix out;
  auto cursor = word.cursor();
  for (std::uint64_t i = 0; i < cap; ++i) {
    if (cursor.done()) {
      out.end = StreamEnd::EndOfWord;
      return out;
    }
    const auto ts = cursor.current();
    if (ts.time > horizon) return out;
    out.symbols.push_back(ts);
    cursor.advance();
  }
  ADD_FAILURE() << "stream_prefix cap hit (horizon too large for the test)";
  return out;
}

std::string render(const RunResult& r) {
  std::ostringstream out;
  out << "accepted=" << r.accepted << " exact=" << r.exact
      << " ticks=" << r.ticks << " f_count=" << r.f_count << " first_f="
      << (r.first_f ? std::to_string(*r.first_f) : std::string("-"))
      << " consumed=" << r.symbols_consumed;
  return out.str();
}

/// Runs `batch_algorithm` through the engine and the online acceptor over
/// the same word; returns a violation message on any field mismatch.
std::optional<std::string> equivalence_violation(
    RealTimeAlgorithm& batch_algorithm,
    std::unique_ptr<OnlineAcceptor> online, const TimedWord& word,
    const RunOptions& options) {
  const auto batch = rtw::engine::run(batch_algorithm, word, options).result;
  const auto prefix = stream_prefix(word, options.horizon);
  for (const auto& ts : prefix.symbols) online->feed(ts);
  const auto verdict = online->finish(prefix.end);
  const auto& r = online->result();
  const bool online_accepted = verdict == Verdict::Accepting;
  if (batch.accepted != r.accepted || batch.exact != r.exact ||
      batch.ticks != r.ticks || batch.f_count != r.f_count ||
      batch.first_f != r.first_f ||
      batch.symbols_consumed != r.symbols_consumed ||
      online_accepted != batch.accepted) {
    return "batch{" + render(batch) + "} != online{" + render(r) +
           " verdict=" + rtw::core::to_string(verdict) + "}";
  }
  return std::nullopt;
}

TEST(OnlineAcceptor, MatchesEngineOnTrivialAlgorithms) {
  const auto word = TimedWord::finite(
      {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 3}, {Symbol::chr('c'), 9}});
  RunOptions options;
  options.horizon = 32;
  {
    AcceptAll batch;
    auto online = std::make_unique<EngineOnlineAcceptor>(
        std::make_unique<AcceptAll>(), options);
    EXPECT_EQ(equivalence_violation(batch, std::move(online), word, options),
              std::nullopt);
  }
  {
    RejectAll batch;
    auto online = std::make_unique<EngineOnlineAcceptor>(
        std::make_unique<RejectAll>(), options);
    EXPECT_EQ(equivalence_violation(batch, std::move(online), word, options),
              std::nullopt);
  }
}

TEST(OnlineAcceptor, VerdictLatchesAndFeedsBecomeNoops) {
  auto online = std::make_unique<EngineOnlineAcceptor>(
      std::make_unique<AcceptAll>(), RunOptions{});
  // AcceptAll locks at tick 0, which becomes emulable at the first feed
  // with a later timestamp.
  EXPECT_EQ(online->feed(Symbol::chr('a'), 0), Verdict::Undetermined);
  EXPECT_EQ(online->feed(Symbol::chr('b'), 5), Verdict::Accepting);
  EXPECT_TRUE(final_verdict(online->verdict()));
  // Latching: more feeds and even a Rejecting-flavored finish are no-ops.
  EXPECT_EQ(online->feed(Symbol::chr('c'), 7), Verdict::Accepting);
  EXPECT_EQ(online->finish(StreamEnd::Truncated), Verdict::Accepting);
  EXPECT_TRUE(online->result().exact);
}

/// Never commits to a lock state: keeps the acceptor live so interface
/// guarantees (like the monotonicity check) stay observable.
class NeverLock final : public RealTimeAlgorithm {
public:
  void on_tick(const StepContext&) override {}
  std::optional<bool> locked() const override { return std::nullopt; }
  void reset() override {}
  std::string name() const override { return "never-lock"; }
};

TEST(OnlineAcceptor, RejectsTimeGoingBackwards) {
  EngineOnlineAcceptor online(std::make_unique<NeverLock>());
  online.feed(Symbol::chr('a'), 10);
  EXPECT_THROW(online.feed(Symbol::chr('b'), 9), ModelError);
}

TEST(OnlineAcceptor, ResetAllowsReuse) {
  RunOptions options;
  options.horizon = 64;
  EngineOnlineAcceptor online(std::make_unique<AcceptAll>(), options);
  online.feed(Symbol::chr('a'), 1);
  online.finish(StreamEnd::EndOfWord);
  const auto first = online.result();
  online.reset();
  EXPECT_EQ(online.verdict(), Verdict::Undetermined);
  online.feed(Symbol::chr('a'), 1);
  online.finish(StreamEnd::EndOfWord);
  EXPECT_EQ(online.result().accepted, first.accepted);
  EXPECT_EQ(online.result().ticks, first.ticks);
}

TEST(OnlineAcceptor, FinishFlavorsMatchTheEngineOnGappyWords) {
  // A finite word with a symbol beyond the horizon: the engine stops at
  // the idle gap instead of walking to the horizon, so Truncated is the
  // faithful finish; EndOfWord must equal the engine run on the in-range
  // prefix as its own complete word.
  const auto word = TimedWord::finite(
      {{Symbol::chr('a'), 2}, {Symbol::chr('b'), 500}});
  RunOptions options;
  options.horizon = 100;
  RejectAll batch;
  auto online = std::make_unique<EngineOnlineAcceptor>(
      std::make_unique<RejectAll>(), options);
  EXPECT_EQ(equivalence_violation(batch, std::move(online), word, options),
            std::nullopt);
}

// =========================== 4. the tri-workload equivalence property

using rtw::deadline::DeadlineInstance;
using rtw::deadline::Usefulness;

/// One generated workload case, separated from how it is checked: the
/// equivalence property runs batch-vs-online over it, the batched-ingress
/// property streams it through two SessionManagers.
struct GeneratedCase {
  std::unique_ptr<RealTimeAlgorithm> batch;
  std::function<std::unique_ptr<OnlineAcceptor>()> make_online;
  TimedWord word = TimedWord::finite({});
  RunOptions options;
  std::shared_ptr<const void> hold;  ///< keeps the batch acceptor's deps alive
};

std::optional<std::string> check_equivalence(GeneratedCase c) {
  return equivalence_violation(*c.batch, c.make_online(), c.word, c.options);
}

GeneratedCase deadline_gen(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  DeadlineInstance inst;
  const auto in_len = 1 + rng.uniform(std::uint64_t{1 + size / 4});
  for (std::uint64_t i = 0; i < in_len; ++i)
    inst.input.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));

  std::shared_ptr<const rtw::deadline::Problem> problem;
  if (rng.bernoulli(0.5))
    problem = std::make_shared<rtw::deadline::SortProblem>();
  else
    problem = std::make_shared<rtw::deadline::FixedCostProblem>(
        1 + rng.uniform(std::uint64_t{30}));

  if (rng.bernoulli(0.7)) {
    inst.proposed_output = problem->solve(inst.input);
  } else {
    const auto out_len = 1 + rng.uniform(std::uint64_t{4});
    for (std::uint64_t i = 0; i < out_len; ++i)
      inst.proposed_output.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));
  }
  if (rng.bernoulli(0.6)) {
    inst.usefulness = Usefulness::firm(3 + rng.uniform(std::uint64_t{40}), 10);
    inst.min_acceptable = rng.uniform(std::uint64_t{10});
  } else {
    inst.usefulness = Usefulness::none(10);
  }

  GeneratedCase c;
  c.options.horizon = 120 + rng.uniform(std::uint64_t{200});
  c.options.fast_forward = rng.bernoulli(0.8);
  c.word = rtw::deadline::build_deadline_word(inst);
  c.batch = std::make_unique<rtw::deadline::DeadlineAcceptor>(*problem);
  c.hold = problem;
  const auto options = c.options;
  c.make_online = [problem, options] {
    return rtw::deadline::make_online_acceptor(problem, options);
  };
  return c;
}

std::optional<std::string> deadline_case(rtw::sim::Xoshiro256ss& rng,
                                         std::size_t size) {
  return check_equivalence(deadline_gen(rng, size));
}

rtw::rtdb::QueryCatalog image_catalog() {
  rtw::rtdb::QueryCatalog catalog;
  catalog.add(rtw::rtdb::Query("all-images", [](const rtw::rtdb::Database& db) {
    return rtw::rtdb::project(
        rtw::rtdb::select_eq(db.get("Objects"), "Kind",
                             rtw::rtdb::Value{std::string("image")}),
        {"Name"});
  }));
  return catalog;
}

GeneratedCase rtdb_gen(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  using namespace rtw::rtdb;
  RtdbWordSpec spec;
  spec.invariants = {{"site", Value{std::string("plant")}}};
  const auto images = 1 + rng.uniform(std::uint64_t{1 + size / 12});
  for (std::uint64_t i = 0; i < images; ++i)
    spec.images.push_back({"s" + std::to_string(i),
                           2 + rng.uniform(std::uint64_t{4}), [i](Tick t) {
                             return Value{static_cast<std::int64_t>(
                                 10 * i + t % 5)};
                           }});

  const bool correct = rng.bernoulli(0.6);
  const Tuple candidate = {
      Value{std::string(correct ? "s0" : "nope")}};
  TimedWord word = TimedWord::finite({});
  if (rng.bernoulli(0.7)) {
    AperiodicQuerySpec q;
    q.query = "all-images";
    q.candidate = candidate;
    q.issue_time = 5 + rng.uniform(std::uint64_t{30});
    if (rng.bernoulli(0.7)) {
      q.usefulness = Usefulness::firm(2 + rng.uniform(std::uint64_t{30}), 10);
      q.min_acceptable = 1;
    } else {
      q.usefulness = Usefulness::none(10);
    }
    word = rtw::core::concat(build_dbB(spec), build_aq(q));
  } else {
    PeriodicQuerySpec p;
    p.query = "all-images";
    p.candidate = [candidate](std::uint64_t) { return candidate; };
    p.issue_time = 5 + rng.uniform(std::uint64_t{20});
    p.period = 24 + rng.uniform(std::uint64_t{24});
    p.usefulness = Usefulness::firm(4 + rng.uniform(std::uint64_t{16}), 10);
    p.min_acceptable = 1;
    word = rtw::core::concat(build_dbB(spec), build_pq(p));
  }

  GeneratedCase c;
  c.options.horizon = 150 + rng.uniform(std::uint64_t{250});
  c.options.fast_forward = rng.bernoulli(0.8);
  c.word = std::move(word);
  const Tick patience = 64;
  c.batch = std::make_unique<RecognitionAcceptor>(image_catalog(),
                                                  linear_cost(), patience);
  const auto options = c.options;
  c.make_online = [options, patience] {
    return make_online_recognition(image_catalog(), linear_cost(), patience,
                                   options);
  };
  return c;
}

std::optional<std::string> rtdb_case(rtw::sim::Xoshiro256ss& rng,
                                     std::size_t size) {
  return check_equivalence(rtdb_gen(rng, size));
}

GeneratedCase adhoc_gen(rtw::sim::Xoshiro256ss& rng, std::size_t size) {
  using namespace rtw::adhoc;
  const auto n = static_cast<NodeId>(3 + rng.uniform(std::uint64_t{1 + size / 8}));
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (NodeId i = 0; i < n; ++i)
    nodes.push_back(std::make_unique<Stationary>(Vec2{10.0 * i, 0.0}));
  auto net = std::make_shared<const Network>(std::move(nodes), 12.0);

  RouteTrace trace;
  trace.source = 0;
  trace.destination = n - 1;
  trace.body = 100 + rng.uniform(std::uint64_t{900});
  trace.originated_at = 2 + rng.uniform(std::uint64_t{10});
  Tick t = trace.originated_at;
  for (NodeId i = 0; i + 1 < n; ++i) {
    trace.hops.push_back({t, t + 1, i, i + 1, trace.body});
    t += 1;
  }
  trace.delivered = true;

  switch (rng.uniform(std::uint64_t{4})) {
    case 0:
      break;  // valid chain
    case 1:  // foreign body mid-chain: the witness chain breaks
      trace.hops[trace.hops.size() / 2].body = trace.body + 1;
      break;
    case 2:  // teleport: d_i != s_{i+1}
      if (trace.hops.size() >= 2) trace.hops.erase(trace.hops.begin() + 1);
      break;
    default:  // undelivered: drop the final hop
      trace.hops.pop_back();
      trace.delivered = false;
      break;
  }

  RouteQuery query{0, static_cast<NodeId>(n - 1), trace.body,
                   trace.originated_at};
  GeneratedCase c;
  c.word = route_instance_word(trace, *net);
  c.options.horizon = 60 + rng.uniform(std::uint64_t{80});
  c.options.fast_forward = rng.bernoulli(0.8);
  c.batch = std::make_unique<RouteWordAcceptor>(*net, query);
  c.hold = net;
  const auto options = c.options;
  c.make_online = [net, query, options] {
    return make_online_route_acceptor(net, query, options);
  };
  return c;
}

std::optional<std::string> adhoc_case(rtw::sim::Xoshiro256ss& rng,
                                      std::size_t size) {
  return check_equivalence(adhoc_gen(rng, size));
}

TEST(OnlineBatchEquivalence, FiveHundredSeededCasesAcrossThreeWorkloads) {
  rtw::proptest::Config cfg;
  cfg.seed = 0x73766331ULL;  // "svc1"
  cfg.cases = 500;
  cfg.max_size = 24;
  const auto result = rtw::proptest::run_property(
      "svc.online_batch_equivalence", cfg,
      [](rtw::sim::Xoshiro256ss& rng, std::size_t size)
          -> std::optional<std::string> {
        switch (rng.uniform(std::uint64_t{3})) {
          case 0:
            return deadline_case(rng, size);
          case 1:
            return rtdb_case(rng, size);
          default:
            return adhoc_case(rng, size);
        }
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "svc.online_batch_equivalence", cfg, *result.failure);
}

/// Batched ingress must be invisible to verdicts: the same stream admitted
/// as random-length feed_batch runs and admitted symbol-by-symbol, through
/// managers at 1 and 2 shards, must produce field-identical reports on the
/// tri-workload mix.  Managers are shared across the 500 cases (one
/// session each) so the property stays cheap.
TEST(OnlineBatchEquivalence, BatchedIngressIsVerdictIdenticalToPerSymbol) {
  ShardConfig shard;
  IngressConfig ingress;
  ingress.ring_capacity = 1 << 13;  // the workload never sheds
  shard.count = 1;
  SessionManager single_1(shard, ingress), batched_1(shard, ingress);
  shard.count = 2;
  SessionManager single_2(shard, ingress), batched_2(shard, ingress);

  rtw::proptest::Config cfg;
  cfg.seed = 0x62617463ULL;  // "batc"
  cfg.cases = 500;
  cfg.max_size = 24;
  const auto result = rtw::proptest::run_property(
      "svc.batched_ingress_equivalence", cfg,
      [&](rtw::sim::Xoshiro256ss& rng,
          std::size_t size) -> std::optional<std::string> {
        GeneratedCase c;
        switch (rng.uniform(std::uint64_t{3})) {
          case 0: c = deadline_gen(rng, size); break;
          case 1: c = rtdb_gen(rng, size); break;
          default: c = adhoc_gen(rng, size); break;
        }
        const auto prefix = stream_prefix(c.word, c.options.horizon);
        const bool two_shards = rng.bernoulli(0.5);
        SessionManager& per = two_shards ? single_2 : single_1;
        SessionManager& bat = two_shards ? batched_2 : batched_1;
        const auto id_per = per.open(c.make_online());
        const auto id_bat = bat.open(c.make_online());

        for (const auto& ts : prefix.symbols)
          if (per.feed(id_per, ts.sym, ts.time) != Admit::Accepted)
            return "per-symbol feed not accepted";
        std::size_t off = 0;
        while (off < prefix.symbols.size()) {
          const std::size_t len =
              std::min<std::size_t>(prefix.symbols.size() - off,
                                    1 + rng.uniform(std::uint64_t{16}));
          if (bat.feed_batch(id_bat,
                             {prefix.symbols.begin() + off,
                              prefix.symbols.begin() + off + len}) !=
              Admit::Accepted)
            return "batched feed not accepted";
          off += len;
        }

        per.close(id_per, prefix.end);
        bat.close(id_bat, prefix.end);
        per.drain();
        bat.drain();
        const auto r_per = per.collect();
        const auto r_bat = bat.collect();
        if (r_per.size() != 1 || r_bat.size() != 1)
          return "expected exactly one report per manager";
        const auto& a = r_per[0];
        const auto& b = r_bat[0];
        if (a.verdict != b.verdict || a.fed != b.fed ||
            a.stale_dropped != b.stale_dropped ||
            a.result.accepted != b.result.accepted ||
            a.result.exact != b.result.exact ||
            a.result.ticks != b.result.ticks ||
            a.result.f_count != b.result.f_count ||
            a.result.first_f != b.result.first_f ||
            a.result.symbols_consumed != b.result.symbols_consumed) {
          return "per-symbol{" + render(a.result) +
                 " verdict=" + rtw::core::to_string(a.verdict) +
                 "} != batched{" + render(b.result) +
                 " verdict=" + rtw::core::to_string(b.verdict) + "}";
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "svc.batched_ingress_equivalence", cfg, *result.failure);
}

// ========================================= 5. Session / SessionManager

TEST(Session, DropsStaleSymbolsInsteadOfThrowing) {
  rtw::svc::Session session(
      1, std::make_unique<EngineOnlineAcceptor>(std::make_unique<RejectAll>()));
  session.feed(Symbol::chr('a'), 5);
  session.feed(Symbol::chr('b'), 3);  // reordered by the wire: stale
  session.feed(Symbol::chr('c'), 5);  // equal time is legal
  EXPECT_EQ(session.fed(), 2u);
  EXPECT_EQ(session.stale_dropped(), 1u);
  session.finish(StreamEnd::Truncated);
  const auto report = session.report(false);
  EXPECT_EQ(report.verdict, Verdict::Rejecting);
  EXPECT_EQ(report.stale_dropped, 1u);
}

TEST(SessionManager, BasicLifecycle) {
  SessionManager manager;
  const auto accept_id =
      manager.open(std::make_unique<EngineOnlineAcceptor>(
          std::make_unique<AcceptAll>()));
  const auto reject_id =
      manager.open(std::make_unique<EngineOnlineAcceptor>(
          std::make_unique<RejectAll>()));
  for (Tick t = 0; t < 4; ++t) {
    EXPECT_EQ(manager.feed(accept_id, Symbol::chr('a'), t), Admit::Accepted);
    EXPECT_EQ(manager.feed(reject_id, Symbol::chr('a'), t), Admit::Accepted);
  }
  manager.close(accept_id, StreamEnd::Truncated);
  manager.close(reject_id, StreamEnd::Truncated);
  manager.drain();
  auto reports = manager.collect();
  ASSERT_EQ(reports.size(), 2u);
  std::map<SessionId, SessionReport> by_id;
  for (auto& r : reports) by_id[r.id] = r;
  EXPECT_EQ(by_id[accept_id].verdict, Verdict::Accepting);
  EXPECT_EQ(by_id[reject_id].verdict, Verdict::Rejecting);
  EXPECT_EQ(by_id[accept_id].fed, 4u);
  const auto stats = manager.stats();
  EXPECT_EQ(stats.opened, 2u);
  EXPECT_EQ(stats.closed, 2u);
  EXPECT_EQ(stats.ingested, 8u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_GT(stats.epochs, 0u);
}

TEST(SessionManager, UnknownSessionsAreCountedNotFatal) {
  SessionManager manager;
  EXPECT_EQ(manager.feed(42, Symbol::chr('a'), 0), Admit::Accepted);
  manager.close(42);
  manager.drain();
  EXPECT_EQ(manager.stats().unknown, 2u);
  EXPECT_TRUE(manager.collect().empty());
}

/// An acceptor whose feed() blocks until the test releases it: pins the
/// shard worker so ring occupancy becomes deterministic.
class GateAcceptor final : public OnlineAcceptor {
public:
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    bool entered = false;

    void release() {
      std::lock_guard lock(mutex);
      open = true;
      cv.notify_all();
    }
    void await_entry() {
      std::unique_lock lock(mutex);
      cv.wait(lock, [this] { return entered; });
    }
  };

  explicit GateAcceptor(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}

  Verdict feed(Symbol, Tick) override {
    std::unique_lock lock(gate_->mutex);
    gate_->entered = true;
    gate_->cv.notify_all();
    gate_->cv.wait(lock, [this] { return gate_->open; });
    return Verdict::Undetermined;
  }
  Verdict finish(StreamEnd) override { return Verdict::Rejecting; }
  Verdict verdict() const override { return Verdict::Undetermined; }
  const RunResult& result() const override { return result_; }
  void reset() override {}
  std::string name() const override { return "gate"; }

private:
  std::shared_ptr<Gate> gate_;
  RunResult result_;
};

TEST(SessionManager, FullRingShedsWhenConfigured) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.ring_capacity = 2;
  ingress.shed_on_full = true;
  SessionManager manager(shard, ingress);
  auto gate = std::make_shared<GateAcceptor::Gate>();
  const auto id = manager.open(std::make_unique<GateAcceptor>(gate));
  manager.drain();  // the Open is processed; the worker parks

  EXPECT_EQ(manager.feed(id, Symbol::chr('a'), 0), Admit::Accepted);
  gate->await_entry();  // worker now blocked inside feed; ring is empty
  EXPECT_EQ(manager.feed(id, Symbol::chr('b'), 1), Admit::Accepted);
  EXPECT_EQ(manager.feed(id, Symbol::chr('c'), 2), Admit::Accepted);
  EXPECT_EQ(manager.feed(id, Symbol::chr('d'), 3), Admit::Shed);

  gate->release();
  manager.drain();
  const auto stats = manager.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.shed_ring_full, 1u);  // a physically full ring, by reason
  EXPECT_EQ(stats.shed_priority, 0u);
  EXPECT_EQ(stats.ingested, 3u);
}

TEST(SessionManager, FullRingBlocksWhenShedDisabled) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.ring_capacity = 1;
  ingress.shed_on_full = false;
  SessionManager manager(shard, ingress);
  auto gate = std::make_shared<GateAcceptor::Gate>();
  const auto id = manager.open(std::make_unique<GateAcceptor>(gate));
  manager.drain();

  EXPECT_EQ(manager.feed(id, Symbol::chr('a'), 0), Admit::Accepted);
  gate->await_entry();
  EXPECT_EQ(manager.feed(id, Symbol::chr('b'), 1), Admit::Accepted);
  EXPECT_EQ(manager.feed(id, Symbol::chr('c'), 2), Admit::Blocked);
  gate->release();
  manager.drain();
  // After release the ring has space again: the caller's retry succeeds.
  EXPECT_EQ(manager.feed(id, Symbol::chr('c'), 2), Admit::Accepted);
  gate->release();
  manager.drain();
  EXPECT_EQ(manager.stats().blocked, 1u);
}

/// Adaptive admission: with the worker pinned, ring depth is exact, so
/// each feed's admission verdict is a deterministic function of priority
/// and occupancy.  Ring of 8 slots: Low sheds at depth >= 4, Normal at
/// depth >= 7, High only when the data plane is physically full.
TEST(SessionManager, WatermarksShedByPriorityUnderLoad) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.ring_capacity = 8;
  ingress.shed_on_full = true;
  SessionManager manager(shard, ingress);
  auto gate = std::make_shared<GateAcceptor::Gate>();
  const auto pinned =
      manager.open(std::make_unique<GateAcceptor>(gate), Priority::High);
  const auto low = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()),
      Priority::Low);
  const auto normal = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()));
  const auto high = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()),
      Priority::High);
  manager.drain();

  ASSERT_EQ(manager.feed(pinned, Symbol::chr('a'), 0), Admit::Accepted);
  gate->await_entry();  // worker blocked inside feed; ring drained to empty

  for (Tick t = 0; t < 4; ++t)
    ASSERT_EQ(manager.feed(high, Symbol::chr('h'), t), Admit::Accepted);
  // Depth 4 = the low watermark: Low data sheds, Normal still lands.
  EXPECT_EQ(manager.feed(low, Symbol::chr('l'), 9), Admit::Shed);
  for (Tick t = 4; t < 7; ++t)
    ASSERT_EQ(manager.feed(normal, Symbol::chr('n'), t), Admit::Accepted);
  // Depth 7 = the high watermark: Normal sheds, High still lands.
  EXPECT_EQ(manager.feed(normal, Symbol::chr('n'), 9), Admit::Shed);
  ASSERT_EQ(manager.feed(high, Symbol::chr('h'), 9), Admit::Accepted);
  // Depth 8 = ring_capacity: everything sheds, and it counts as ring_full.
  EXPECT_EQ(manager.feed(high, Symbol::chr('h'), 10), Admit::Shed);

  gate->release();
  manager.drain();
  const auto stats = manager.stats();
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.shed_priority, 2u);
  EXPECT_EQ(stats.shed_ring_full, 1u);
  EXPECT_EQ(stats.shed_session_bound, 0u);
  EXPECT_EQ(stats.ingested, 9u);
}

TEST(SessionManager, SessionQuotaShedsWithSessionBound) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.ring_capacity = 64;
  ingress.session_quota = 2;
  ingress.shed_on_full = true;
  SessionManager manager(shard, ingress);
  auto gate = std::make_shared<GateAcceptor::Gate>();
  const auto pinned = manager.open(std::make_unique<GateAcceptor>(gate));
  const auto greedy = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()));
  const auto other = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()));
  manager.drain();

  ASSERT_EQ(manager.feed(pinned, Symbol::chr('a'), 0), Admit::Accepted);
  gate->await_entry();
  // The hot session exhausts its in-flight quota...
  ASSERT_EQ(manager.feed(greedy, Symbol::chr('g'), 0), Admit::Accepted);
  ASSERT_EQ(manager.feed(greedy, Symbol::chr('g'), 1), Admit::Accepted);
  EXPECT_EQ(manager.feed(greedy, Symbol::chr('g'), 2), Admit::Shed);
  // ...without starving anyone else, and a batch that would overshoot the
  // quota sheds whole (admission never tears a run).
  EXPECT_EQ(manager.feed(other, Symbol::chr('o'), 0), Admit::Accepted);
  EXPECT_EQ(manager.feed_batch(other, {{Symbol::chr('o'), 1},
                                       {Symbol::chr('o'), 2}}),
            Admit::Shed);

  gate->release();
  manager.drain();
  const auto stats = manager.stats();
  EXPECT_EQ(stats.shed_session_bound, 3u);  // 1 single + a run of 2
  EXPECT_EQ(stats.ingested, 4u);
  // The quota bounds in-flight symbols, not lifetime: drained work frees it.
  EXPECT_EQ(manager.feed(greedy, Symbol::chr('g'), 9), Admit::Accepted);
  manager.drain();
  EXPECT_EQ(manager.stats().ingested, 5u);
}

TEST(SessionManager, AgedRingDataIsShedUnlessHighPriority) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.max_queue_delay_ns = 1'000'000;  // 1 ms freshness bound
  SessionManager manager(shard, ingress);
  auto gate = std::make_shared<GateAcceptor::Gate>();
  const auto pinned =
      manager.open(std::make_unique<GateAcceptor>(gate), Priority::High);
  const auto normal = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()));
  const auto vip = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()),
      Priority::High);
  manager.drain();

  ASSERT_EQ(manager.feed(pinned, Symbol::chr('a'), 0), Admit::Accepted);
  gate->await_entry();
  for (Tick t = 0; t < 8; ++t)
    ASSERT_EQ(manager.feed(normal, Symbol::chr('n'), t), Admit::Accepted);
  for (Tick t = 0; t < 8; ++t)
    ASSERT_EQ(manager.feed(vip, Symbol::chr('v'), t), Admit::Accepted);
  // Everything queued behind the pinned worker is now past its freshness
  // bound; only the High-priority session's data survives the age check.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate->release();
  manager.drain();

  manager.close(normal);
  manager.close(vip);
  manager.close(pinned);
  manager.drain();
  std::map<SessionId, SessionReport> by_id;
  for (auto& r : manager.collect()) by_id[r.id] = r;
  EXPECT_EQ(by_id[normal].fed, 0u);
  EXPECT_EQ(by_id[vip].fed, 8u);
  const auto stats = manager.stats();
  EXPECT_EQ(stats.shed_priority, 8u);
  EXPECT_EQ(stats.ingested, 9u);
}

TEST(SessionManager, FeedLatencySamplesAreRecorded) {
  ShardConfig shard;
  shard.count = 1;
  IngressConfig ingress;
  ingress.latency_sample_every = 1;  // stamp every data command
  SessionManager manager(shard, ingress);
  const auto id = manager.open(
      std::make_unique<EngineOnlineAcceptor>(std::make_unique<AcceptAll>()));
  for (Tick t = 0; t < 64; ++t) manager.feed(id, Symbol::chr('a'), t);
  manager.drain();
  const auto samples = manager.take_feed_latency_samples();
  EXPECT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), 64u);
  // Taking transfers ownership: the buffer starts over.
  EXPECT_TRUE(manager.take_feed_latency_samples().empty());
}

TEST(SessionManager, IdleSessionsAreEvicted) {
  ShardConfig shard;
  shard.count = 1;
  shard.idle_epochs = 2;
  SessionManager manager(shard, IngressConfig{});
  const auto idle = manager.open(std::make_unique<EngineOnlineAcceptor>(
      std::make_unique<AcceptAll>()));
  const auto busy = manager.open(std::make_unique<EngineOnlineAcceptor>(
      std::make_unique<AcceptAll>()));
  manager.drain();
  // Each feed+drain round is at least one shard epoch; the busy session
  // stays active while the idle one ages out.
  for (Tick t = 0; t < 6; ++t) {
    manager.feed(busy, Symbol::chr('a'), t);
    manager.drain();
  }
  auto reports = manager.collect();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].id, idle);
  EXPECT_TRUE(reports[0].evicted);
  EXPECT_EQ(manager.stats().evicted, 1u);
  EXPECT_EQ(manager.stats().active, 1u);
  manager.close(busy, StreamEnd::Truncated);
  manager.drain();
  ASSERT_EQ(manager.collect().size(), 1u);
}

/// Shard-count invariance: verdicts must not depend on how sessions are
/// spread over workers.  Runs the same interleaved deadline workload at 1
/// and at 8 shards and checks every report against the batch engine.
TEST(SessionManager, ShardCountIsObservationallyIrrelevant) {
  rtw::sim::Xoshiro256ss rng(0x5eed);
  struct Job {
    DeadlineInstance instance;
    std::shared_ptr<const rtw::deadline::Problem> problem;
    StreamPrefix prefix;
    RunResult expected;
  };
  RunOptions options;
  options.horizon = 160;
  std::vector<Job> jobs;
  for (int j = 0; j < 24; ++j) {
    Job job;
    job.problem = std::make_shared<rtw::deadline::SortProblem>();
    const auto len = 1 + rng.uniform(std::uint64_t{5});
    for (std::uint64_t i = 0; i < len; ++i)
      job.instance.input.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));
    job.instance.proposed_output =
        rng.bernoulli(0.6) ? job.problem->solve(job.instance.input)
                           : std::vector<Symbol>{Symbol::nat(1)};
    job.instance.usefulness =
        Usefulness::firm(5 + rng.uniform(std::uint64_t{30}), 10);
    job.instance.min_acceptable = 1;
    const auto word = rtw::deadline::build_deadline_word(job.instance);
    job.prefix = stream_prefix(word, options.horizon);
    rtw::deadline::DeadlineAcceptor batch(*job.problem);
    job.expected = rtw::engine::run(batch, word, options).result;
    jobs.push_back(std::move(job));
  }

  for (const unsigned shards : {1u, 8u}) {
    ShardConfig shard;
    shard.count = shards;
    IngressConfig ingress;
    // Big enough that nothing sheds -- the workload is ~7.4k symbols, so
    // even the Normal-priority watermark (87.5% occupancy) stays out of
    // reach when the single-shard worker lags behind the producer -- but
    // small enough that eight eagerly-allocated rings stay cheap.
    ingress.ring_capacity = 1 << 14;
    SessionManager manager(shard, ingress);
    std::map<SessionId, const Job*> by_id;
    for (const auto& job : jobs)
      by_id[manager.open(rtw::deadline::make_online_acceptor(job.problem,
                                                             options))] = &job;
    // Interleave feeds round-robin across sessions: cross-session order
    // must not matter.
    for (std::size_t i = 0;; ++i) {
      bool any = false;
      for (const auto& [id, job] : by_id) {
        if (i >= job->prefix.symbols.size()) continue;
        any = true;
        ASSERT_EQ(manager.feed(id, job->prefix.symbols[i].sym,
                               job->prefix.symbols[i].time),
                  Admit::Accepted);
      }
      if (!any) break;
    }
    for (const auto& [id, job] : by_id) manager.close(id, job->prefix.end);
    manager.drain();
    const auto reports = manager.collect();
    ASSERT_EQ(reports.size(), jobs.size()) << "shards=" << shards;
    for (const auto& r : reports) {
      const auto& expected = by_id.at(r.id)->expected;
      EXPECT_EQ(r.result.accepted, expected.accepted) << "shards=" << shards;
      EXPECT_EQ(r.result.exact, expected.exact);
      EXPECT_EQ(r.result.ticks, expected.ticks);
      EXPECT_EQ(r.result.f_count, expected.f_count);
      EXPECT_EQ(r.result.first_f, expected.first_f);
      EXPECT_EQ(r.result.symbols_consumed, expected.symbols_consumed);
      EXPECT_EQ(r.verdict == Verdict::Accepting, expected.accepted);
    }
  }
}

TEST(SessionManager, WireDrivenSessions) {
  std::string stream = rtw::svc::encode_open(1, "accept");
  stream += rtw::svc::encode_open(2, "reject");
  stream += rtw::svc::encode_feed(1, {{Symbol::chr('a'), 0},
                                      {Symbol::chr('b'), 2}});
  stream += rtw::svc::encode_feed(2, {{Symbol::chr('a'), 1}});
  stream += rtw::svc::encode_close(1, StreamEnd::Truncated);
  stream += rtw::svc::encode_close(2, StreamEnd::Truncated);

  const rtw::svc::AcceptorFactory factory =
      [](SessionId, std::string_view profile)
      -> std::unique_ptr<OnlineAcceptor> {
    if (profile == "accept")
      return std::make_unique<EngineOnlineAcceptor>(
          std::make_unique<AcceptAll>());
    if (profile == "reject")
      return std::make_unique<EngineOnlineAcceptor>(
          std::make_unique<RejectAll>());
    return nullptr;
  };

  SessionManager manager;
  Decoder decoder;
  decoder.push(stream);
  ASSERT_TRUE(decoder.ok());
  WireEvent ev;
  while (decoder.next(ev))
    EXPECT_EQ(manager.apply(ev, factory), Admit::Accepted);
  manager.drain();
  const auto reports = manager.collect();
  ASSERT_EQ(reports.size(), 2u);
  std::map<SessionId, Verdict> verdicts;
  for (const auto& r : reports) verdicts[r.id] = r.verdict;
  EXPECT_EQ(verdicts[1], Verdict::Accepting);
  EXPECT_EQ(verdicts[2], Verdict::Rejecting);
}

TEST(SessionManager, ShutdownTruncatesRemainingSessions) {
  SessionManager manager;
  const auto id = manager.open(std::make_unique<EngineOnlineAcceptor>(
      std::make_unique<RejectAll>()));
  manager.feed(id, Symbol::chr('a'), 0);
  manager.shutdown(StreamEnd::Truncated);
  const auto reports = manager.collect();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].id, id);
  EXPECT_EQ(reports[0].verdict, Verdict::Rejecting);
  EXPECT_FALSE(reports[0].evicted);
  EXPECT_EQ(manager.stats().active, 0u);
}

// ============================================= 6. fault-injected soak

/// One soak round: K deadline sessions encoded as an interleaved frame
/// stream, mangled by a random FaultPlan, decoded and applied to a
/// SessionManager while a reference state machine mirrors every decoded
/// event.  Divergence = failure.
void soak_round(std::uint64_t seed, unsigned shards) {
  rtw::sim::Xoshiro256ss rng(seed);
  RunOptions options;
  options.horizon = 150;

  struct Spec {
    std::shared_ptr<const rtw::deadline::Problem> problem;
    StreamPrefix prefix;
  };
  std::map<SessionId, Spec> specs;
  std::vector<std::vector<std::string>> per_session_frames;
  const unsigned sessions = 12;
  for (unsigned s = 0; s < sessions; ++s) {
    const SessionId id = 1000 + s;
    Spec spec;
    spec.problem = std::make_shared<rtw::deadline::SortProblem>();
    DeadlineInstance inst;
    const auto len = 1 + rng.uniform(std::uint64_t{5});
    for (std::uint64_t i = 0; i < len; ++i)
      inst.input.push_back(Symbol::nat(rng.uniform(std::uint64_t{9})));
    inst.proposed_output = rng.bernoulli(0.6)
                               ? spec.problem->solve(inst.input)
                               : std::vector<Symbol>{Symbol::nat(2)};
    inst.usefulness = Usefulness::firm(4 + rng.uniform(std::uint64_t{30}), 10);
    inst.min_acceptable = 1;
    spec.prefix = stream_prefix(rtw::deadline::build_deadline_word(inst),
                                options.horizon);

    std::vector<std::string> frames;
    frames.push_back(rtw::svc::encode_open(id, "sort"));
    const auto& symbols = spec.prefix.symbols;
    const std::size_t per_frame = 1 + rng.uniform(std::uint64_t{7});
    for (std::size_t off = 0; off < symbols.size(); off += per_frame)
      frames.push_back(rtw::svc::encode_feed(
          id, {symbols.begin() + off,
               symbols.begin() +
                   std::min(symbols.size(), off + per_frame)}));
    frames.push_back(rtw::svc::encode_close(id, spec.prefix.end));
    per_session_frames.push_back(std::move(frames));
    specs.emplace(id, std::move(spec));
  }

  // Round-robin interleave, then mangle at frame granularity.
  std::vector<std::string> frames;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (const auto& fs : per_session_frames)
      if (i < fs.size()) {
        frames.push_back(fs[i]);
        any = true;
      }
    if (!any) break;
  }
  const auto plan = rtw::proptest::random_fault_plan(rng, 2, 24);
  const auto mangled = rtw::svc::apply_faults(frames, plan);

  ShardConfig shard;
  shard.count = shards;
  IngressConfig ingress;
  ingress.ring_capacity = 1 << 13;  // soak measures divergence, not shedding
  SessionManager manager(shard, ingress);
  const rtw::svc::AcceptorFactory factory =
      [&](SessionId id, std::string_view) -> std::unique_ptr<OnlineAcceptor> {
    const auto it = specs.find(id);
    if (it == specs.end()) return nullptr;
    return rtw::deadline::make_online_acceptor(it->second.problem, options);
  };

  // The reference: the same per-session state machine, run inline.
  std::map<SessionId, rtw::svc::Session> mirror;
  std::vector<SessionReport> expected;
  const auto mirror_open = [&](SessionId id) {
    if (mirror.count(id)) return;  // double open is ignored by the shard
    mirror.emplace(id, rtw::svc::Session(
                           id, rtw::deadline::make_online_acceptor(
                                   specs.at(id).problem, options)));
  };

  Decoder decoder;
  std::string stream;
  for (const auto& f : mangled) stream += f;
  std::size_t offset = 0;
  while (offset < stream.size() || true) {
    if (offset < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.uniform(std::uint64_t{96}),
                                stream.size() - offset);
      decoder.push(std::string_view(stream).substr(offset, chunk));
      offset += chunk;
    }
    WireEvent ev;
    while (decoder.next(ev)) {
      switch (ev.kind) {
        case WireEvent::Kind::Open:
          mirror_open(ev.session);
          manager.apply(ev, factory);
          break;
        case WireEvent::Kind::Symbols: {
          const auto it = mirror.find(ev.session);
          for (const auto& ts : ev.symbols) {
            ASSERT_EQ(manager.feed(ev.session, ts.sym, ts.time),
                      Admit::Accepted);
            if (it != mirror.end()) it->second.feed(ts.sym, ts.time);
          }
          break;
        }
        case WireEvent::Kind::Close: {
          manager.close(ev.session, ev.end);
          const auto it = mirror.find(ev.session);
          if (it != mirror.end()) {
            it->second.finish(ev.end);
            expected.push_back(it->second.report(false));
            mirror.erase(it);
          }
          break;
        }
        default:
          break;  // v1 notification frames never occur in this stream
      }
    }
    if (offset >= stream.size()) break;
  }
  ASSERT_TRUE(decoder.ok()) << decoder.error();

  // Sessions whose Close was dropped are swept by the graceful shutdown.
  manager.shutdown(StreamEnd::Truncated);
  for (auto& [id, session] : mirror) {
    session.finish(StreamEnd::Truncated);
    expected.push_back(session.report(false));
  }
  mirror.clear();

  auto reports = manager.collect();
  ASSERT_EQ(reports.size(), expected.size())
      << "seed=" << seed << " shards=" << shards;
  // Per-id chronological order is preserved on both sides; across ids the
  // order is arbitrary, so compare sorted by (id, sequence).
  const auto order = [](const SessionReport& a, const SessionReport& b) {
    return a.id < b.id;
  };
  std::stable_sort(reports.begin(), reports.end(), order);
  std::stable_sort(expected.begin(), expected.end(), order);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& got = reports[i];
    const auto& want = expected[i];
    ASSERT_EQ(got.id, want.id) << "seed=" << seed << " shards=" << shards;
    EXPECT_EQ(got.verdict, want.verdict)
        << "seed=" << seed << " shards=" << shards << " id=" << got.id;
    EXPECT_EQ(got.result.accepted, want.result.accepted);
    EXPECT_EQ(got.result.exact, want.result.exact);
    EXPECT_EQ(got.result.ticks, want.result.ticks);
    EXPECT_EQ(got.result.f_count, want.result.f_count);
    EXPECT_EQ(got.result.first_f, want.result.first_f);
    EXPECT_EQ(got.result.symbols_consumed, want.result.symbols_consumed);
    EXPECT_EQ(got.fed, want.fed);
    EXPECT_EQ(got.stale_dropped, want.stale_dropped);
  }
}

TEST(SvcSoak, FaultedWireStreamsNeverDiverge) {
  rtw::obs::init_from_env();  // RTW_TRACE=<path> records the soak's spans
  double seconds = 1.0;
  if (const char* env = std::getenv("RTW_SVC_SOAK_SECONDS"))
    seconds = std::atof(env);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::uint64_t round = 0;
  do {
    soak_round(0x50414bULL + round, round % 2 ? 8u : 1u);
    ++round;
  } while (std::chrono::steady_clock::now() < deadline &&
           !::testing::Test::HasFailure());
  std::cout << "[svc-soak] rounds=" << round << "\n";
  rtw::obs::flush_env_trace();
}

}  // namespace
