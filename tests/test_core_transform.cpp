// Tests for the word transformations (shift / filter / take_until /
// map_symbols) and the Buchi closure constructions (union, intersection).

#include <gtest/gtest.h>

#include "rtw/automata/operations.hpp"
#include "rtw/core/concat.hpp"
#include "rtw/core/error.hpp"
#include "rtw/core/serialize.hpp"
#include "rtw/core/transform.hpp"
#include "rtw/deadline/word.hpp"

namespace {

using namespace rtw::core;

// ------------------------------------------------------------- transform

TEST(ShiftTest, FiniteWordTranslates) {
  auto w = TimedWord::finite(symbols_of("ab"), {1, 3});
  auto s = shift(w, 10);
  EXPECT_EQ(s.times(2), (std::vector<Tick>{11, 13}));
  EXPECT_EQ(s.symbols(2), w.symbols(2));
}

TEST(ShiftTest, LassoStaysLasso) {
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}},
                            {{Symbol::chr('c'), 2}}, 3);
  auto s = shift(w, 5);
  EXPECT_TRUE(s.is_lasso_rep());
  EXPECT_EQ(s.at(0).time, 5u);
  EXPECT_EQ(s.at(1).time, 7u);
  EXPECT_EQ(s.at(2).time, 10u);
  EXPECT_EQ(s.well_behaved(), Certificate::Proven);
}

TEST(ShiftTest, GeneratorPreservesTraits) {
  GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;
  auto w = TimedWord::generator(
      [](std::uint64_t i) { return TimedSymbol{Symbol::nat(i), i}; }, traits);
  auto s = shift(w, 100);
  EXPECT_EQ(s.at(3).time, 103u);
  EXPECT_EQ(s.well_behaved(), Certificate::Proven);
}

TEST(FilterTest, KeepsMatchingSymbols) {
  auto w = TimedWord::finite(
      {{Symbol::chr('a'), 0}, {Symbol::nat(1), 1}, {Symbol::chr('b'), 2}});
  auto f = filter(w, [](const TimedSymbol& ts) { return ts.sym.is_char(); });
  EXPECT_EQ(f.length(), std::uint64_t{2});
  EXPECT_EQ(f.at(1).sym, Symbol::chr('b'));
  EXPECT_EQ(f.at(1).time, 2u);
}

TEST(FilterTest, InfiniteInputThrows) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1);
  EXPECT_THROW(filter(w, [](const TimedSymbol&) { return true; }),
               ModelError);
}

TEST(TakeUntilTest, CutsAtCutoff) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 2}}, 2);
  auto head = take_until(w, 7);
  // Times 2, 4, 6 are <= 7; 8 is not.
  EXPECT_EQ(head.length(), std::uint64_t{3});
  EXPECT_EQ(head.at(2).time, 6u);
}

TEST(TakeUntilTest, FiniteWordRespected) {
  auto w = TimedWord::finite(symbols_of("xyz"), {0, 5, 9});
  EXPECT_EQ(*take_until(w, 5).length(), 2u);
  EXPECT_EQ(*take_until(w, 100).length(), 3u);
}

TEST(MapSymbolsTest, RelabelsEveryRepresentation) {
  auto upper = [](Symbol s) {
    return s.is_char() ? Symbol::chr(static_cast<char>(s.as_char() - 32)) : s;
  };
  auto fin = map_symbols(TimedWord::text_at("ab", 3), upper);
  EXPECT_EQ(fin.symbols(2), symbols_of("AB"));
  auto las = map_symbols(TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1),
                         upper);
  EXPECT_EQ(las.at(5).sym, Symbol::chr('A'));
  EXPECT_TRUE(las.is_lasso_rep());
}

TEST(TransformTest, ShiftCommutesWithConcat) {
  // shift(concat(a, b), d) == concat(shift(a, d), shift(b, d)) on finite
  // words -- a Definition 3.5 compatibility property.
  auto a = TimedWord::finite(symbols_of("ac"), {1, 5});
  auto b = TimedWord::finite(symbols_of("bd"), {2, 6});
  auto lhs = shift(concat(a, b), 7);
  auto rhs = concat(shift(a, 7), shift(b, 7));
  EXPECT_EQ(lhs.prefix(4), rhs.prefix(4));
}

// ---------------------------------------------------- Buchi constructions

using namespace rtw::automata;

BuchiAutomaton inf_many(char c) {
  // Accepts omega-words over {a,b} with infinitely many `c`s.
  FiniteAutomaton fa(2, 0);
  for (char x : {'a', 'b'}) {
    fa.add_transition(0, x == c ? 1 : 0, Symbol::chr(x));
    fa.add_transition(1, x == c ? 1 : 0, Symbol::chr(x));
  }
  fa.add_final(1);
  return BuchiAutomaton(std::move(fa));
}

TEST(BuchiUnionTest, AcceptsEitherLanguage) {
  const auto u = buchi_union(inf_many('a'), inf_many('b'));
  EXPECT_TRUE(u.accepts(omega_word("", "a")));
  EXPECT_TRUE(u.accepts(omega_word("", "b")));
  EXPECT_TRUE(u.accepts(omega_word("", "ab")));
}

TEST(BuchiUnionTest, RejectsNeither) {
  // Over {a,b} every infinite word has infinitely many a's or b's; use a
  // third letter to fall outside both.
  const auto u = buchi_union(inf_many('a'), inf_many('b'));
  EXPECT_FALSE(u.accepts(omega_word("", "c")));
}

TEST(BuchiIntersectionTest, RequiresBoth) {
  const auto i = buchi_intersection(inf_many('a'), inf_many('b'));
  EXPECT_TRUE(i.accepts(omega_word("", "ab")));
  EXPECT_TRUE(i.accepts(omega_word("bbb", "ba")));
  EXPECT_FALSE(i.accepts(omega_word("", "a")));   // no b's
  EXPECT_FALSE(i.accepts(omega_word("ab", "b"))); // finitely many a's
}

TEST(BuchiIntersectionTest, AgreesWithFactorsOnSamples) {
  const auto fa = inf_many('a');
  const auto fb = inf_many('b');
  const auto i = buchi_intersection(fa, fb);
  const auto u = buchi_union(fa, fb);
  for (const char* cycle : {"a", "b", "ab", "aab", "abb", "ba"}) {
    const auto w = omega_word("ab", cycle);
    EXPECT_EQ(i.accepts(w), fa.accepts(w) && fb.accepts(w)) << cycle;
    EXPECT_EQ(u.accepts(w), fa.accepts(w) || fb.accepts(w)) << cycle;
  }
}

}  // namespace

// ----------------------------------------------------------- serialization

namespace serialization {

using namespace rtw::core;

TEST(SerializeTest, FiniteRoundTrip) {
  auto w = TimedWord::finite({{Symbol::chr('a'), 0},
                              {Symbol::nat(42), 3},
                              {marks::waiting(), 5},
                              {Symbol::chr('7'), 5}});
  const auto text = serialize(w);
  EXPECT_EQ(text, "finite: a@0 42@3 <w>@5 '7'@5");
  const auto back = parse_word(text);
  ASSERT_EQ(back.length(), w.length());
  for (std::uint64_t i = 0; i < *w.length(); ++i)
    EXPECT_EQ(back.at(i), w.at(i)) << "i=" << i;
}

TEST(SerializeTest, LassoRoundTripPreservesStructure) {
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}},
                            {{Symbol::chr('x'), 2}, {marks::accept(), 3}}, 4);
  const auto text = serialize(w);
  EXPECT_EQ(text, "lasso(period=4): p@0 | x@2 <f>@3");
  const auto back = parse_word(text);
  ASSERT_TRUE(back.is_lasso_rep());
  EXPECT_EQ(back.lasso_period(), 4u);
  EXPECT_EQ(back.lasso_prefix(), w.lasso_prefix());
  EXPECT_EQ(back.lasso_cycle(), w.lasso_cycle());
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(back.at(i), w.at(i));
}

TEST(SerializeTest, EmptyFiniteWord) {
  const auto text = serialize(TimedWord());
  EXPECT_EQ(text, "finite:");
  EXPECT_TRUE(parse_word(text).empty());
}

TEST(SerializeTest, EscapedCharacters) {
  auto w = TimedWord::finite({{Symbol::chr('<'), 1},
                              {Symbol::chr('@'), 2},
                              {Symbol::chr(' '), 3},
                              {Symbol::chr('\''), 4}});
  const auto back = parse_word(serialize(w));
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(back.at(i), w.at(i));
}

TEST(SerializeTest, GeneratorWordsRejected) {
  auto w = TimedWord::generator(
      [](std::uint64_t i) { return TimedSymbol{Symbol::nat(i), i}; });
  EXPECT_THROW(serialize(w), ModelError);
  // The documented escape hatch: snapshot first.
  EXPECT_NO_THROW(serialize(take_until(w, 10)));
}

TEST(SerializeTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_word("garbage"), ModelError);
  EXPECT_THROW(parse_word("finite: a"), ModelError);          // missing @t
  EXPECT_THROW(parse_word("finite: a@x"), ModelError);        // bad time
  EXPECT_THROW(parse_word("lasso(period=2): a@0"), ModelError);  // no bar
  EXPECT_THROW(parse_word("finite: <oops@3"), ModelError);    // open marker
  EXPECT_THROW(parse_word("finite: 'ab'@1"), ModelError);     // bad quote
}

TEST(SerializeTest, ApplicationWordsSerialize) {
  // A section 4.1 word (lasso) survives the round trip.
  using namespace rtw::deadline;
  DeadlineInstance inst;
  inst.input = {Symbol::nat(3)};
  inst.proposed_output = {Symbol::nat(3)};
  inst.usefulness = Usefulness::firm(6, 5);
  inst.min_acceptable = 1;
  const auto word = build_deadline_word(inst);
  const auto back = parse_word(serialize(word));
  for (std::uint64_t i = 0; i < 40; ++i) EXPECT_EQ(back.at(i), word.at(i));
  EXPECT_EQ(back.well_behaved(), Certificate::Proven);
}

}  // namespace serialization
