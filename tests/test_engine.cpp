// Tests for the rtw::engine runtime: the EventQueue-driven executor
// (parity with the historical core::run_acceptor semantics), the lock
// protocol edge cases, the RunTrace/Counters observability layer, and the
// BatchRunner parallel fan-out (deterministic seeding, verdict parity with
// the serial path, concurrency cap).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtw/deadline/acceptor.hpp"
#include "rtw/engine/batch.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::core;
using rtw::engine::BatchOptions;
using rtw::engine::BatchRunner;
using rtw::engine::Engine;
using rtw::engine::EngineResult;

/// Locks (accept) as soon as `count` 'a' symbols with timestamps <= window
/// have been seen and the window has elapsed; rejects otherwise.
class CountingAcceptor final : public RealTimeAlgorithm {
 public:
  CountingAcceptor(Tick window, std::uint64_t threshold)
      : window_(window), threshold_(threshold) {}

  void on_tick(const StepContext& ctx) override {
    for (const auto& ts : ctx.arrivals)
      if (ts.sym == Symbol::chr('a') && ts.time <= window_) ++count_;
    if (ctx.now >= window_ && !decided_) {
      decided_ = true;
      verdict_ = count_ >= threshold_;
    }
    if (decided_ && verdict_ && ctx.out.can_write(ctx.now))
      ctx.out.write(ctx.now, ctx.out.accept_symbol());
  }

  std::optional<bool> locked() const override {
    if (!decided_) return std::nullopt;
    return verdict_;
  }

  void reset() override {
    count_ = 0;
    decided_ = false;
    verdict_ = false;
  }

 private:
  Tick window_;
  std::uint64_t threshold_;
  std::uint64_t count_ = 0;
  bool decided_ = false;
  bool verdict_ = false;
};

// ----------------------------------------------------------- Engine::run

TEST(EngineTest, MatchesLegacyAcceptVerdict) {
  CountingAcceptor algo(10, 3);
  const auto yes = TimedWord::finite(symbols_of("aaa"), {1, 5, 9});
  const auto run = rtw::engine::run(algo, yes);
  EXPECT_TRUE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
  EXPECT_EQ(run.result.symbols_consumed, 3u);
  EXPECT_EQ(run.trace.lock_time, Tick{10});
}

TEST(EngineTest, MatchesLegacyRejectVerdict) {
  CountingAcceptor algo(10, 3);
  const auto no = TimedWord::finite(symbols_of("aaa"), {1, 5, 11});
  const auto run = rtw::engine::run(algo, no);
  EXPECT_FALSE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
}

TEST(EngineTest, FreeRunAgreesWithConfiguredEngineOnASweep) {
  // The one-shot free function and an explicitly constructed Engine are
  // the same machine: field-for-field parity across a small sweep.
  for (Tick step : {1, 3, 7}) {
    for (std::uint64_t threshold : {1u, 3u, 5u}) {
      std::vector<TimedSymbol> symbols;
      for (std::uint64_t i = 0; i < 5; ++i)
        symbols.push_back({Symbol::chr('a'), step * (i + 1)});
      const auto word = TimedWord::finite(symbols);
      CountingAcceptor a(12, threshold), b(12, threshold);
      const auto legacy = rtw::engine::run(a, word).result;
      const auto modern =
          rtw::engine::Engine(rtw::core::RunOptions{}).run(b, word).result;
      EXPECT_EQ(legacy.accepted, modern.accepted);
      EXPECT_EQ(legacy.exact, modern.exact);
      EXPECT_EQ(legacy.ticks, modern.ticks);
      EXPECT_EQ(legacy.f_count, modern.f_count);
      EXPECT_EQ(legacy.first_f, modern.first_f);
      EXPECT_EQ(legacy.symbols_consumed, modern.symbols_consumed);
    }
  }
}

TEST(EngineTest, FastForwardSkipsIdleGapsInsideTheHeap) {
  CountingAcceptor algo(1000000, 1);
  const auto w = TimedWord::finite(symbols_of("a"), {999999});
  RunOptions opt;
  opt.horizon = 2000000;
  const auto run = rtw::engine::run(algo, w, opt);
  EXPECT_TRUE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
  // The gap was skipped, not walked: the driver visited far fewer ticks
  // than the lock time, and the skip is accounted for in the trace.
  EXPECT_LT(run.trace.ticks_executed, 100u);
  EXPECT_GT(run.trace.ticks_skipped, 999000u);
}

// ------------------------------------------- lock protocol edge cases

TEST(EngineLockEdgeTest, LockOnTickZero) {
  // AcceptAll commits to s_f immediately: the verdict is exact with the
  // lock on the very first tick, before any arrival matters.
  AcceptAll algo;
  const auto run =
      rtw::engine::run(algo, TimedWord::finite(symbols_of("abc"), {5, 6, 7}));
  EXPECT_TRUE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
  EXPECT_EQ(run.result.ticks, Tick{0});
  EXPECT_EQ(run.trace.lock_time, Tick{0});
  EXPECT_EQ(run.trace.ticks_executed, 1u);
}

TEST(EngineLockEdgeTest, RejectLockOnTickZero) {
  RejectAll algo;
  const auto run = rtw::engine::run(algo, TimedWord::text_at("abc", 0));
  EXPECT_FALSE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
  EXPECT_EQ(run.trace.lock_time, Tick{0});
}

TEST(EngineLockEdgeTest, LockAfterLastArrival) {
  // The decision window closes at tick 20; the last arrival is at tick 9.
  // The executor must keep single-stepping past the drained word until the
  // algorithm locks.
  CountingAcceptor algo(20, 2);
  const auto w = TimedWord::finite(symbols_of("aa"), {3, 9});
  const auto run = rtw::engine::run(algo, w);
  EXPECT_TRUE(run.result.accepted);
  EXPECT_TRUE(run.result.exact);
  EXPECT_EQ(run.trace.lock_time, Tick{20});
  EXPECT_EQ(run.result.symbols_consumed, 2u);
}

TEST(EngineLockEdgeTest, NeverLocksTrailingWindowAccept) {
  // Writes f every tick but never commits: the horizon heuristic accepts,
  // flagged exact == false.
  class Waffler final : public RealTimeAlgorithm {
   public:
    void on_tick(const StepContext& ctx) override {
      if (ctx.out.can_write(ctx.now))
        ctx.out.write(ctx.now, ctx.out.accept_symbol());
    }
  } algo;
  RunOptions opt;
  opt.horizon = 200;
  const auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1);
  const auto run = rtw::engine::run(algo, w, opt);
  EXPECT_TRUE(run.result.accepted);
  EXPECT_FALSE(run.result.exact);
  EXPECT_FALSE(run.trace.lock_time.has_value());
}

TEST(EngineLockEdgeTest, NeverLocksSilentReject) {
  class Silent final : public RealTimeAlgorithm {
   public:
    void on_tick(const StepContext&) override {}
  } algo;
  RunOptions opt;
  opt.horizon = 100;
  const auto run = rtw::engine::run(
      algo, TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1), opt);
  EXPECT_FALSE(run.result.accepted);
  EXPECT_FALSE(run.result.exact);
  EXPECT_EQ(run.result.f_count, 0u);
}

TEST(EngineLockEdgeTest, StaleFOutsideTrailingWindowRejects) {
  // f written early, never again: the trailing-quarter heuristic must not
  // credit it.
  class EarlyBird final : public RealTimeAlgorithm {
   public:
    void on_tick(const StepContext& ctx) override {
      if (ctx.now <= 2 && ctx.out.can_write(ctx.now))
        ctx.out.write(ctx.now, ctx.out.accept_symbol());
    }
  } algo;
  RunOptions opt;
  opt.horizon = 1000;
  const auto run = rtw::engine::run(
      algo, TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1), opt);
  EXPECT_FALSE(run.result.accepted);
  EXPECT_FALSE(run.result.exact);
  EXPECT_GE(run.result.f_count, 1u);
}

// -------------------------------------------------------- observability

TEST(EngineTraceTest, TraceFieldsAreCoherent) {
  CountingAcceptor algo(10, 1);
  const auto w = TimedWord::finite(symbols_of("a"), {4});
  const auto run = rtw::engine::run(algo, w);
  EXPECT_EQ(run.trace.final_tick, run.result.ticks);
  EXPECT_GE(run.trace.ticks_executed, 1u);
  EXPECT_EQ(run.trace.events_executed, run.trace.ticks_executed);
  EXPECT_GE(run.trace.queue_depth_hwm, 1u);
  EXPECT_EQ(run.trace.symbols_consumed, run.result.symbols_consumed);
  EXPECT_EQ(run.trace.f_count, run.result.f_count);
}

TEST(EngineTraceTest, JsonIsOneLine) {
  AcceptAll algo;
  const auto run = rtw::engine::run(algo, TimedWord::text_at("a", 0));
  const std::string json = run.trace.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"lock_time\":0"), std::string::npos);
}

TEST(EngineCountersTest, RunsAreCounted) {
  rtw::engine::Counters::reset();
  AcceptAll algo;
  rtw::engine::run(algo, TimedWord::text_at("a", 0));
  rtw::engine::run(algo, TimedWord::text_at("b", 0));
  const auto snap = rtw::engine::Counters::snapshot();
  EXPECT_EQ(snap.runs, 2u);
  EXPECT_EQ(snap.locked_runs, 2u);
  EXPECT_GE(snap.ticks, 2u);
  EXPECT_EQ(snap.symbols, 2u);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"engine.runs\":2"), std::string::npos);
}

// --------------------------------------------------------- BatchRunner

TEST(BatchRunnerTest, MapPreservesIndexOrder) {
  BatchRunner runner(BatchOptions{.threads = 4});
  const auto out = runner.map(
      64, [](std::size_t i, rtw::sim::Xoshiro256ss&) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunnerTest, PerRunRngIsThreadCountInvariant) {
  const BatchOptions serial{.threads = 1, .max_in_flight = 0, .seed = 42};
  const BatchOptions wide{.threads = 4, .max_in_flight = 0, .seed = 42};
  auto draw = [](std::size_t, rtw::sim::Xoshiro256ss& rng) { return rng(); };
  const auto a = BatchRunner(serial).map(100, draw);
  const auto b = BatchRunner(wide).map(100, draw);
  EXPECT_EQ(a, b);
  // And a different base seed gives a different stream.
  const BatchOptions other{.threads = 4, .max_in_flight = 0, .seed = 43};
  EXPECT_NE(a, BatchRunner(other).map(100, draw));
}

TEST(BatchRunnerTest, ConcurrencyCapIsRespected) {
  std::atomic<int> in_flight{0};
  std::atomic<int> hwm{0};
  BatchRunner runner(BatchOptions{.threads = 4, .max_in_flight = 2});
  runner.map(32, [&](std::size_t, rtw::sim::Xoshiro256ss&) {
    const int now = ++in_flight;
    int seen = hwm.load();
    while (seen < now && !hwm.compare_exchange_weak(seen, now)) {
    }
    --in_flight;
    return 0;
  });
  EXPECT_LE(hwm.load(), 2);
  EXPECT_GE(hwm.load(), 1);
}

TEST(BatchRunnerTest, ExceptionsPropagate) {
  BatchRunner runner(BatchOptions{.threads = 2});
  EXPECT_THROW(runner.map(4,
                          [](std::size_t i, rtw::sim::Xoshiro256ss&) -> int {
                            if (i == 3) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(BatchRunnerTest, HundredWordSweepMatchesSerialBitForBit) {
  // The acceptance bar: a 100-word membership sweep on >= 4 threads is
  // bit-identical to the serial path.
  std::vector<TimedWord> words;
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::vector<TimedSymbol> symbols;
    const std::uint64_t n = i % 7;  // 0..6 a's; threshold 3 splits the set
    for (std::uint64_t k = 0; k < n; ++k)
      symbols.push_back({Symbol::chr('a'), 1 + 2 * k});
    words.push_back(TimedWord::finite(std::move(symbols)));
  }
  const auto factory = [] { return std::make_unique<CountingAcceptor>(12, 3); };

  std::vector<bool> serial;
  for (const auto& w : words) {
    auto algorithm = factory();
    serial.push_back(rtw::engine::run(*algorithm, w).result.accepted);
  }
  const auto parallel = rtw::engine::membership_sweep(
      factory, words, {}, false, BatchOptions{.threads = 4});
  EXPECT_EQ(serial, parallel);
  // Sanity: the sweep is not all-one-verdict.
  EXPECT_NE(std::count(serial.begin(), serial.end(), true), 0);
  EXPECT_NE(std::count(serial.begin(), serial.end(), false), 0);
}

TEST(BatchRunnerTest, RunSampledIsDeterministic) {
  const auto factory = [] { return std::make_unique<CountingAcceptor>(8, 2); };
  auto sampler = [](std::uint64_t, rtw::sim::Xoshiro256ss& rng) {
    std::vector<TimedSymbol> symbols;
    const std::uint64_t n = rng.uniform(5);
    for (std::uint64_t k = 0; k < n; ++k)
      symbols.push_back({Symbol::chr('a'), 1 + k});
    return TimedWord::finite(std::move(symbols));
  };
  auto verdicts = [&](unsigned threads) {
    BatchRunner runner(BatchOptions{.threads = threads, .seed = 7});
    std::vector<char> out;
    for (const auto& r : runner.run_sampled(factory, 40, sampler))
      out.push_back(r.result.accepted ? 1 : 0);
    return out;
  };
  EXPECT_EQ(verdicts(1), verdicts(4));
}

// ------------------------------------------------- application parity

TEST(BatchApplicationTest, DeadlineBatchMatchesSerial) {
  {
    rtw::deadline::SortProblem pi;
    std::vector<rtw::deadline::DeadlineInstance> instances;
    for (std::uint64_t i = 0; i < 24; ++i) {
      rtw::deadline::DeadlineInstance inst;
      for (std::uint64_t k = 0; k < 3 + i % 4; ++k)
        inst.input.push_back(Symbol::nat((11 * i + 5 * k) % 23));
      inst.proposed_output = pi.solve(inst.input);
      if (i % 5 == 0) inst.proposed_output.push_back(Symbol::nat(99));  // lie
      const auto cost = pi.work_cost(inst.input);
      inst.usefulness = rtw::deadline::Usefulness::firm(cost + 4, 10);
      inst.min_acceptable = 1;
      instances.push_back(std::move(inst));
    }
    std::vector<bool> serial;
    for (const auto& inst : instances)
      serial.push_back(rtw::deadline::accepts_instance(pi, inst));
    const auto batch = rtw::deadline::accepts_instances(
        pi, instances, BatchOptions{.threads = 4});
    EXPECT_EQ(serial, batch);
    EXPECT_NE(std::count(serial.begin(), serial.end(), false), 0);
    EXPECT_NE(std::count(serial.begin(), serial.end(), true), 0);
  }
}

}  // namespace
