// Tests for the lossy routing problem R'_{n,u} (end of section 5.2.4):
// dropped condition 3, and the threshold reading of "lost".

#include <gtest/gtest.h>

#include "rtw/adhoc/protocols.hpp"
#include "rtw/adhoc/words.hpp"

namespace {

using namespace rtw::adhoc;

std::unique_ptr<Mobility> at(double x, double y) {
  return std::make_unique<Stationary>(Vec2{x, y});
}

Network line4() {
  std::vector<std::unique_ptr<Mobility>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(at(10.0 * i, 0));
  return Network(std::move(nodes), 12.0);
}

RouteTrace delivered_trace() {
  RouteTrace trace;
  trace.source = 0;
  trace.destination = 3;
  trace.body = 9;
  trace.originated_at = 4;
  trace.hops = {{4, 5, 0, 1, 9}, {5, 6, 1, 2, 9}, {6, 7, 2, 3, 9}};
  trace.delivered = true;
  return trace;
}

TEST(LossyRouteTest, DeliveredTraceIsInBothLanguages) {
  const auto net = line4();
  const auto trace = delivered_trace();
  EXPECT_EQ(validate_route(trace, net), std::nullopt);
  EXPECT_EQ(validate_route_lossy(trace, net), std::nullopt);
}

TEST(LossyRouteTest, UndeliveredIsOnlyInRPrime) {
  const auto net = line4();
  auto trace = delivered_trace();
  trace.delivered = false;
  trace.hops.pop_back();  // chain stops mid-way
  EXPECT_TRUE(validate_route(trace, net).has_value());
  EXPECT_EQ(validate_route_lossy(trace, net), std::nullopt);
}

TEST(LossyRouteTest, EmptyChainLostMessageIsInRPrime) {
  const auto net = line4();
  RouteTrace trace;
  trace.source = 0;
  trace.destination = 3;
  trace.delivered = false;
  EXPECT_TRUE(validate_route(trace, net).has_value());
  EXPECT_EQ(validate_route_lossy(trace, net), std::nullopt);
}

TEST(LossyRouteTest, StructureStillCheckedWhenDelivered) {
  const auto net = line4();
  auto trace = delivered_trace();
  trace.hops[1].src = 3;  // chain break
  EXPECT_TRUE(validate_route_lossy(trace, net).has_value());
}

TEST(LossyRouteTest, ThresholdReadingOfLost) {
  const auto trace = delivered_trace();  // delivered at 7, originated at 4
  EXPECT_FALSE(is_lost(trace, 3));  // latency 3 <= 3
  EXPECT_FALSE(is_lost(trace, 10));
  EXPECT_TRUE(is_lost(trace, 2));   // latency 3 > 2
  RouteTrace undelivered;
  undelivered.delivered = false;
  EXPECT_TRUE(is_lost(undelivered, 1000));
}

TEST(LossyRouteTest, ThresholdLostDeliveriesStayInRPrime) {
  const auto net = line4();
  const auto trace = delivered_trace();
  // With threshold 2 the delivery is "lost" in the practical reading, but
  // the word is still a member of R'.
  EXPECT_EQ(validate_route_lossy(trace, net, rtw::core::Tick{2}),
            std::nullopt);
}

TEST(LossyRouteTest, PartitionedSimulationLandsInRPrime) {
  // A real undelivered simulation trace: member of R', not of R.
  std::vector<std::unique_ptr<Mobility>> nodes;
  nodes.push_back(at(0, 0));
  nodes.push_back(at(10, 0));
  nodes.push_back(at(500, 0));
  Network net(std::move(nodes), 12.0);
  Simulator sim(net, dsr_factory());
  sim.schedule({1, 0, 2, 10});
  const auto result = sim.run(200);
  const auto trace = extract_route(result, net, 1);
  EXPECT_FALSE(trace.delivered);
  EXPECT_TRUE(validate_route(trace, net).has_value());
  EXPECT_EQ(validate_route_lossy(trace, net), std::nullopt);
  EXPECT_TRUE(is_lost(trace, 100));
}

}  // namespace
