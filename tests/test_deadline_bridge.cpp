// Tests for the scheduler <-> section 4.1 bridge: every executed job's
// word-level verdict must agree with the scheduler's miss accounting, and
// the RTA recurrence must agree with the simulator.

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/deadline/bridge.hpp"

namespace {

using namespace rtw::deadline;
using rtw::core::Tick;

Job finished_job(Tick release, Tick deadline_rel, Tick finish) {
  Job j;
  j.task_id = 1;
  j.job_index = 0;
  j.release = release;
  j.absolute_deadline = release + deadline_rel;
  j.wcet = 1;
  j.remaining = 0;
  j.finish = finish;
  return j;
}

TEST(JobBridgeTest, OnTimeJobAccepted) {
  const auto j = finished_job(10, 8, 15);
  EXPECT_FALSE(j.missed());
  EXPECT_TRUE(job_accepted(j));
}

TEST(JobBridgeTest, ExactlyAtDeadlineAccepted) {
  // Inclusive deadline: finish == absolute_deadline is a meet.
  const auto j = finished_job(10, 8, 18);
  EXPECT_FALSE(j.missed());
  EXPECT_TRUE(job_accepted(j));
}

TEST(JobBridgeTest, OneTickLateRejected) {
  const auto j = finished_job(10, 8, 19);
  EXPECT_TRUE(j.missed());
  EXPECT_FALSE(job_accepted(j));
}

TEST(JobBridgeTest, UnfinishedJobRejected) {
  Job j = finished_job(0, 5, 3);
  j.finish.reset();
  EXPECT_TRUE(j.missed());
  EXPECT_FALSE(job_accepted(j));
}

TEST(JobBridgeTest, WordIsWellBehaved) {
  const auto w = job_word(finished_job(4, 6, 8));
  EXPECT_EQ(w.well_behaved(), rtw::core::Certificate::Proven);
}

// The headline property: across whole schedules under every policy, the
// word-level verdict equals the scheduler's.
class VerdictAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerdictAgreement, AcceptorMatchesSchedulerOnEveryJob) {
  rtw::sim::Xoshiro256ss rng(GetParam());
  const auto tasks = random_task_set(4, 0.95, rng);
  for (auto policy : {Policy::Edf, Policy::RateMonotonic, Policy::Fifo,
                      Policy::Llf}) {
    const auto schedule = simulate_schedule(tasks, policy, 400);
    for (const auto& job : schedule.jobs) {
      EXPECT_EQ(job_accepted(job), !job.missed())
          << to_string(policy) << " task " << job.task_id << " job "
          << job.job_index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerdictAgreement,
                         ::testing::Values<std::uint64_t>(3, 14, 15, 92, 65));

// ------------------------------------------------------------------- RTA

TEST(RtaTest, UncontendedTaskRespondsInWcet) {
  const std::vector<Task> tasks = {{0, 0, 3, 10, 10}};
  EXPECT_EQ(response_time_rm(tasks, 0), Tick{3});
}

TEST(RtaTest, InterferenceFromHigherPriority) {
  // Task 1 (period 4, wcet 1) preempts task 0 (period 10, wcet 3):
  // R = 3 + ceil(R/4)*1 -> fixed point R = 4 (the release at t = 4 does
  // not interfere with a job that finishes at 4).
  const std::vector<Task> tasks = {{0, 0, 3, 10, 10}, {1, 0, 1, 4, 4}};
  EXPECT_EQ(response_time_rm(tasks, 0), Tick{4});
  EXPECT_EQ(response_time_rm(tasks, 1), Tick{1});
  EXPECT_TRUE(rm_schedulable(tasks));
}

TEST(RtaTest, UnschedulableDetected) {
  // U = 3/4 + 3/5 > 1: the low-priority task cannot fit.
  const std::vector<Task> tasks = {{0, 0, 3, 5, 5}, {1, 0, 3, 4, 4}};
  EXPECT_EQ(response_time_rm(tasks, 0), std::nullopt);
  EXPECT_FALSE(rm_schedulable(tasks));
}

TEST(RtaTest, Validation) {
  const std::vector<Task> tasks = {{0, 0, 1, 4, 4}};
  EXPECT_THROW(response_time_rm(tasks, 5), rtw::core::ModelError);
  const std::vector<Task> aperiodic = {{0, 0, 1, 4, 0}};
  EXPECT_THROW(response_time_rm(aperiodic, 0), rtw::core::ModelError);
}

// RTA vs simulation: the analytic response time bounds (and under
// synchronous release, equals) the simulator's worst observed response.
class RtaVsSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaVsSim, AnalysisMatchesSimulation) {
  rtw::sim::Xoshiro256ss rng(GetParam());
  const auto tasks = random_task_set(3, 0.7, rng);
  if (!rm_schedulable(tasks)) GTEST_SKIP() << "set not RM-schedulable";
  const auto schedule = simulate_schedule(tasks, Policy::RateMonotonic, 2000);
  EXPECT_EQ(schedule.missed, 0u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto rta = response_time_rm(tasks, i);
    ASSERT_TRUE(rta.has_value());
    Tick worst = 0;
    for (const auto& job : schedule.jobs) {
      if (job.task_id != tasks[i].id || !job.finish) continue;
      worst = std::max(worst, *job.finish - job.release);
    }
    // The synchronous release at t=0 is the critical instant: the
    // simulator's worst response is exactly the RTA fixed point.
    EXPECT_EQ(worst, *rta) << "task " << tasks[i].id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaVsSim,
                         ::testing::Values<std::uint64_t>(2, 5, 11, 21, 33,
                                                          55));

}  // namespace
