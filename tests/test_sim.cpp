// Tests for the sim substrate: RNG determinism and distribution sanity,
// streaming statistics, histogram, table printing, and the discrete-event
// kernel's ordering guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rtw/sim/event_queue.hpp"
#include "rtw/sim/histogram.hpp"
#include "rtw/sim/rng.hpp"
#include "rtw/sim/stats.hpp"
#include "rtw/sim/table.hpp"

namespace {

using namespace rtw::sim;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformBoundRespected) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Xoshiro, UniformZeroBound) {
  Xoshiro256ss rng(3);
  EXPECT_EQ(rng.uniform(std::uint64_t{0}), 0u);
}

TEST(Xoshiro, UniformInclusiveRange) {
  Xoshiro256ss rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform(std::int64_t{-2}, std::int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, UniformRealInUnitInterval) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, UniformMeanIsCentered) {
  Xoshiro256ss rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.uniform_real());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256ss rng(17);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Xoshiro, SubstreamsDiffer) {
  Xoshiro256ss base(21);
  auto s0 = base.substream(0);
  auto s1 = base.substream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0() == s1()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole, left, right;
  Xoshiro256ss rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-5, 5);
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(-2, 2);
  for (std::int64_t v : {-5, -2, 0, 0, 1, 2, 9}) h.add(v);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 2u);  // bin for -2 (one genuine + one clamped)
  EXPECT_EQ(h.count(2), 2u);  // bin for 0
  EXPECT_EQ(h.count(4), 2u);  // bin for +2
}

TEST(HistogramTest, FractionSumsToOne) {
  Histogram h(0, 3);
  for (int i = 0; i < 10; ++i) h.add(i % 4);
  double sum = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h(0, 1);
  h.add(0);
  h.add(0);
  h.add(1);
  const auto text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("(") , std::string::npos);
}

TEST(HistogramTest, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(3, 1), std::invalid_argument);
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(std::int64_t{1});
  t.row().cell("long-name").cell(3.14159, 2);
  const auto text = t.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TableTest, PrintsToStream) {
  Table t({"a"});
  t.row().cell("b");
  std::ostringstream os;
  t.print(os, 2);
  EXPECT_NE(os.str().find("  a"), std::string::npos);
}

TEST(EventQueueTest, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&](Tick) { order.push_back(2); });
  q.schedule_at(3, [&](Tick) { order.push_back(1); });
  q.schedule_at(9, [&](Tick) { order.push_back(3); });
  EXPECT_EQ(q.run_until(100), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(7, [&, i](Tick) { order.push_back(i); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HorizonStopsExecution) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&](Tick) { ++ran; });
  q.schedule_at(20, [&](Tick) { ++ran; });
  EXPECT_EQ(q.run_until(15), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<Tick> fired;
  std::function<void(Tick)> chain = [&](Tick now) {
    fired.push_back(now);
    if (fired.size() < 4) q.schedule_in(2, chain);
  };
  q.schedule_at(1, chain);
  q.run_until(100);
  EXPECT_EQ(fired, (std::vector<Tick>{1, 3, 5, 7}));
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  Tick seen = 999;
  q.schedule_at(10, [&](Tick) {
    q.schedule_at(2, [&](Tick inner) { seen = inner; });
  });
  q.run_until(100);
  EXPECT_EQ(seen, 10u);
}

TEST(EventQueueTest, PastSchedulingViaScheduleInClampsToo) {
  EventQueue q;
  Tick seen = 999;
  q.schedule_at(10, [&](Tick) {
    // schedule_in(0) from inside an event lands at now(), not before it.
    q.schedule_in(0, [&](Tick inner) { seen = inner; });
  });
  q.run_until(100);
  EXPECT_EQ(seen, 10u);
}

TEST(EventQueueTest, EventExactlyAtHorizonFires) {
  // The horizon is inclusive: at == horizon executes, at == horizon + 1
  // stays queued.  Both run_until and step agree.
  EventQueue q;
  int at_horizon = 0, beyond = 0;
  q.schedule_at(15, [&](Tick) { ++at_horizon; });
  q.schedule_at(16, [&](Tick) { ++beyond; });
  EXPECT_EQ(q.run_until(15), 1u);
  EXPECT_EQ(at_horizon, 1);
  EXPECT_EQ(beyond, 0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.step(15));  // the tick-16 event is beyond the horizon
  EXPECT_TRUE(q.step(16));   // ...and fires once the horizon reaches it
  EXPECT_EQ(beyond, 1);
}

TEST(EventQueueTest, RunUntilAdvancesClockToHorizonOnDrain) {
  EventQueue q;
  q.schedule_at(3, [](Tick) {});
  q.run_until(50);
  // The queue drained at tick 3, but the clock still reads the horizon so
  // consecutive run_until windows observe monotone time.
  EXPECT_EQ(q.now(), 50u);
  q.run_until(20);  // lower horizon never moves the clock backwards
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueueTest, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(4, [](Tick) {});
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0u);
  EXPECT_EQ(q.run_until(10), 0u);
}

}  // namespace
