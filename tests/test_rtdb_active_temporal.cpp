// Tests for active databases (ECA rules, firing modes), temporal databases
// (lifespans, snapshots) and the real-time object model (section 5.1.2).

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/rtdb/active.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/rtdb.hpp"
#include "rtw/rtdb/temporal.hpp"

namespace {

using namespace rtw::rtdb;
using rtw::core::ModelError;

// ----------------------------------------------------------------- active

Database schedules_db() {
  Relation sch("Schedules", {"City", "Date"});
  sch.insert({Value{std::string("Mexico City")}, Value{Date{1999, 10}}});
  sch.insert({Value{std::string("Hamilton")}, Value{Date{1999, 11}}});
  Database db;
  db.put(std::move(sch));
  return db;
}

/// The paper's example rule: on MonthChange if true then
/// del(Date < CurrentDate).
Rule month_change_rule(FiringMode mode = FiringMode::Immediate) {
  Rule r;
  r.name = "purge-past";
  r.event = "MonthChange";
  r.mode = mode;
  r.condition = [](const Database&, const Event&) { return true; };
  r.action = [](Database& db, const Event& e, const EmitFn&) {
    const Date current = std::get<Date>(e.attributes.at("CurrentDate"));
    auto& sch = db.get("Schedules");
    sch.erase_if([&sch, &current](const Tuple& t) {
      return std::get<Date>(sch.field(t, "Date")) < current;
    });
  };
  return r;
}

Event month_change(Date current) {
  Event e;
  e.name = "MonthChange";
  e.attributes["CurrentDate"] = Value{current};
  return e;
}

TEST(ActiveTest, PaperRuleDeletesPastExhibitions) {
  Database db = schedules_db();
  RuleEngine engine;
  engine.add_rule(month_change_rule());
  const auto report = engine.process(db, month_change(Date{1999, 11}));
  EXPECT_EQ(report.fired, std::vector<std::string>{"purge-past"});
  EXPECT_EQ(db.get("Schedules").size(), 1u);  // October deleted
}

TEST(ActiveTest, ConditionGatesFiring) {
  Database db = schedules_db();
  RuleEngine engine;
  Rule r = month_change_rule();
  r.condition = [](const Database&, const Event&) { return false; };
  engine.add_rule(std::move(r));
  const auto report = engine.process(db, month_change(Date{1999, 11}));
  EXPECT_TRUE(report.fired.empty());
  EXPECT_EQ(db.get("Schedules").size(), 2u);
}

TEST(ActiveTest, UnrelatedEventsIgnored) {
  Database db = schedules_db();
  RuleEngine engine;
  engine.add_rule(month_change_rule());
  Event other;
  other.name = "SomethingElse";
  EXPECT_TRUE(engine.process(db, std::move(other)).fired.empty());
}

TEST(ActiveTest, CascadingEvents) {
  Database db = schedules_db();
  RuleEngine engine;
  Rule first;
  first.name = "first";
  first.event = "A";
  first.condition = [](const Database&, const Event&) { return true; };
  first.action = [](Database&, const Event&, const EmitFn& emit) {
    Event b;
    b.name = "B";
    emit(std::move(b));
  };
  Rule second;
  second.name = "second";
  second.event = "B";
  second.condition = [](const Database&, const Event&) { return true; };
  second.action = [](Database&, const Event&, const EmitFn&) {};
  engine.add_rule(std::move(first));
  engine.add_rule(std::move(second));
  Event a;
  a.name = "A";
  const auto report = engine.process(db, std::move(a));
  EXPECT_EQ(report.fired, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(report.cascades, 1u);
}

TEST(ActiveTest, CascadeLimitStopsRunaway) {
  Database db;
  RuleEngine engine(8);
  Rule loop;
  loop.name = "loop";
  loop.event = "A";
  loop.condition = [](const Database&, const Event&) { return true; };
  loop.action = [](Database&, const Event&, const EmitFn& emit) {
    Event a;
    a.name = "A";
    emit(std::move(a));
  };
  engine.add_rule(std::move(loop));
  Event a;
  a.name = "A";
  const auto report = engine.process(db, std::move(a));
  EXPECT_TRUE(report.cascade_limit_hit);
  EXPECT_LE(report.fired.size(), 10u);
}

TEST(ActiveTest, DeferredSeesSettledState) {
  // An immediate rule mutates the DB; a deferred rule's condition observes
  // the post-mutation state even though both trigger on the same event.
  Database db = schedules_db();
  RuleEngine engine;
  engine.add_rule(month_change_rule(FiringMode::Immediate));
  Rule check;
  check.name = "late-check";
  check.event = "MonthChange";
  check.mode = FiringMode::Deferred;
  check.condition = [](const Database& d, const Event&) {
    return d.get("Schedules").size() == 1;  // only after the purge
  };
  bool deferred_saw_purged = false;
  check.action = [&deferred_saw_purged](Database&, const Event&,
                                        const EmitFn&) {
    deferred_saw_purged = true;
  };
  engine.add_rule(std::move(check));
  engine.process(db, month_change(Date{1999, 11}));
  EXPECT_TRUE(deferred_saw_purged);
}

TEST(ActiveTest, FiringOrderImmediateDeferredConcurrent) {
  Database db;
  RuleEngine engine;
  std::vector<std::string> order;
  auto mk = [&order](const char* name, FiringMode mode) {
    Rule r;
    r.name = name;
    r.event = "E";
    r.mode = mode;
    r.condition = [](const Database&, const Event&) { return true; };
    r.action = [&order, name](Database&, const Event&, const EmitFn&) {
      order.push_back(name);
    };
    return r;
  };
  engine.add_rule(mk("conc", FiringMode::Concurrent));
  engine.add_rule(mk("defer", FiringMode::Deferred));
  engine.add_rule(mk("immed", FiringMode::Immediate));
  Event e;
  e.name = "E";
  engine.process(db, std::move(e));
  EXPECT_EQ(order, (std::vector<std::string>{"immed", "defer", "conc"}));
}

TEST(ActiveTest, RuleValidation) {
  RuleEngine engine;
  Rule bad;
  bad.name = "bad";
  bad.event = "E";
  EXPECT_THROW(engine.add_rule(std::move(bad)), ModelError);
}

// --------------------------------------------------------------- temporal

TEST(LifespanTest, PointAndInterval) {
  const auto p = Lifespan::point(5);
  EXPECT_TRUE(p.contains(5));
  EXPECT_FALSE(p.contains(4));
  EXPECT_EQ(p.duration(), 1u);
  const auto iv = Lifespan::interval(2, 6);
  EXPECT_EQ(iv.duration(), 5u);
  EXPECT_THROW(Lifespan::interval(6, 2), ModelError);
}

TEST(LifespanTest, UnionMergesOverlapsAndAdjacency) {
  const auto a = Lifespan::interval(1, 3);
  const auto b = Lifespan::interval(4, 7);  // adjacent (discrete chronons)
  const auto u = a.unite(b);
  EXPECT_EQ(u.intervals().size(), 1u);
  EXPECT_EQ(u.duration(), 7u);
  const auto c = Lifespan::interval(10, 12);
  EXPECT_EQ(a.unite(c).intervals().size(), 2u);
}

TEST(LifespanTest, Intersection) {
  const auto a = Lifespan::interval(1, 10);
  const auto b = Lifespan::interval(5, 20).unite(Lifespan::interval(25, 30));
  const auto i = a.intersect(b);
  EXPECT_EQ(i, Lifespan::interval(5, 10));
  EXPECT_TRUE(a.intersect(Lifespan::empty()).is_empty());
}

TEST(LifespanTest, ComplementIsInvolution) {
  const auto a = Lifespan::interval(3, 7).unite(Lifespan::interval(20, 25));
  EXPECT_EQ(a.complement().complement(), a);
  EXPECT_TRUE(a.complement().contains(0));
  EXPECT_TRUE(a.complement().contains(8));
  EXPECT_FALSE(a.complement().contains(5));
  EXPECT_EQ(Lifespan::always().complement(), Lifespan::empty());
}

TEST(LifespanTest, BooleanAlgebraLaws) {
  // De Morgan on sampled instants (property-style spot check).
  const auto a = Lifespan::interval(0, 9).unite(Lifespan::interval(30, 40));
  const auto b = Lifespan::interval(5, 35);
  const auto lhs = a.intersect(b).complement();
  const auto rhs = a.complement().unite(b.complement());
  for (Tick t : {0u, 4u, 5u, 9u, 10u, 29u, 30u, 35u, 36u, 40u, 41u, 100u})
    EXPECT_EQ(lhs.contains(t), rhs.contains(t)) << "t=" << t;
}

TEST(LifespanTest, FromForever) {
  const auto f = Lifespan::from(100);
  EXPECT_TRUE(f.contains(kForever));
  EXPECT_EQ(f.duration(), kForever);
  EXPECT_EQ(f.to_string(), "[100,inf]");
}

TEST(SnapshotStoreTest, InstanceAtServesLatest) {
  SnapshotStore store;
  EXPECT_EQ(store.instance_at(0), std::nullopt);
  store.record(10, schedules_db());
  Database later = schedules_db();
  later.get("Schedules").erase_if([](const Tuple&) { return true; });
  store.record(20, later);
  EXPECT_EQ(store.instance_at(5), std::nullopt);
  EXPECT_EQ(store.instance_at(10)->get("Schedules").size(), 2u);
  EXPECT_EQ(store.instance_at(15)->get("Schedules").size(), 2u);
  EXPECT_EQ(store.instance_at(25)->get("Schedules").size(), 0u);
  EXPECT_THROW(store.record(20, schedules_db()), ModelError);
}

TEST(SnapshotStoreTest, TupleLifespanReconstruction) {
  SnapshotStore store;
  store.record(10, schedules_db());
  Database purged = schedules_db();
  auto& sch = purged.get("Schedules");
  sch.erase_if([&sch](const Tuple& t) {
    return std::get<Date>(sch.field(t, "Date")) < Date{1999, 11};
  });
  store.record(20, purged);
  const Tuple october{Value{std::string("Mexico City")}, Value{Date{1999, 10}}};
  const Tuple november{Value{std::string("Hamilton")}, Value{Date{1999, 11}}};
  EXPECT_EQ(store.tuple_lifespan("Schedules", october),
            Lifespan::interval(10, 19));
  EXPECT_EQ(store.tuple_lifespan("Schedules", november), Lifespan::from(10));
  EXPECT_TRUE(store.tuple_lifespan("Schedules", Tuple{}).is_empty());
}

// ---------------------------------------------------------------- rt model

RealTimeDatabase sensor_db() {
  RealTimeDatabase db(3);
  db.add_image({"temp", 5, [](Tick t) {
                  return Value{static_cast<std::int64_t>(20 + t % 7)};
                }});
  db.add_image({"pressure", 10, [](Tick t) {
                  return Value{static_cast<std::int64_t>(100 + t)};
                }});
  db.add_derived({"comfort",
                  {"temp", "pressure"},
                  [](const std::vector<TimedValue>& in) {
                    return Value{std::get<std::int64_t>(in[0].value) +
                                 std::get<std::int64_t>(in[1].value)};
                  }});
  db.add_invariant("units", Value{std::string("celsius")});
  return db;
}

TEST(RtModelTest, SamplingFollowsPeriods) {
  auto db = sensor_db();
  for (Tick t = 0; t <= 20; ++t) db.tick(t);
  // temp sampled at 0,5,10,15,20 -> archive keeps last 3.
  const auto arch = db.archive("temp");
  ASSERT_EQ(arch.size(), 3u);
  EXPECT_EQ(arch[0].valid_time, 10u);
  EXPECT_EQ(arch[2].valid_time, 20u);
  EXPECT_EQ(db.image_value("pressure")->valid_time, 20u);
}

TEST(RtModelTest, DerivedTimestampIsOldestInput) {
  auto db = sensor_db();
  for (Tick t = 0; t <= 15; ++t) db.tick(t);
  // temp last at 15, pressure last at 10 -> derived timestamp 10.
  const auto comfort = db.derived_value("comfort");
  ASSERT_TRUE(comfort.has_value());
  EXPECT_EQ(comfort->valid_time, 10u);
  EXPECT_EQ(std::get<std::int64_t>(comfort->value),
            (20 + 15 % 7) + (100 + 10));
}

TEST(RtModelTest, InvariantTimestampIsNow) {
  auto db = sensor_db();
  const auto u = db.invariant_value("units", 123);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->valid_time, 123u);
  EXPECT_EQ(u->value, Value{std::string("celsius")});
}

TEST(RtModelTest, AgeAndDispersion) {
  const TimedValue a{Value{std::int64_t{1}}, 10};
  const TimedValue b{Value{std::int64_t{2}}, 25};
  EXPECT_EQ(age(a, 30), 20u);
  EXPECT_EQ(age(a, 5), 0u);
  EXPECT_EQ(dispersion(a, b), 15u);
  EXPECT_EQ(dispersion(b, a), 15u);
}

TEST(RtModelTest, AbsoluteConsistencyThreshold) {
  auto db = sensor_db();
  for (Tick t = 0; t <= 20; ++t) db.tick(t);
  // Ages at now=24: temp 4, pressure 4, derived (oldest input 20) 4.
  EXPECT_TRUE(db.absolutely_consistent(24, 5));
  EXPECT_FALSE(db.absolutely_consistent(24, 3));
}

TEST(RtModelTest, RelativeConsistencyThreshold) {
  auto db = sensor_db();
  for (Tick t = 0; t <= 15; ++t) db.tick(t);
  // temp at 15, pressure at 10: dispersion 5.
  EXPECT_TRUE(db.relatively_consistent(5));
  EXPECT_FALSE(db.relatively_consistent(4));
}

TEST(RtModelTest, UnsampledDatabaseIsInconsistent) {
  auto db = sensor_db();
  EXPECT_FALSE(db.absolutely_consistent(0, 100));
  EXPECT_FALSE(db.relatively_consistent(100));
}

TEST(RtModelTest, SampleEventsReachTheRuleEngine) {
  auto db = sensor_db();
  RuleEngine engine;
  Database log;
  Relation samples("Samples", {"Object"});
  log.put(samples);
  Rule r;
  r.name = "log-sample";
  r.event = "Sample";
  r.condition = [](const Database&, const Event&) { return true; };
  r.action = [](Database& d, const Event& e, const EmitFn&) {
    d.get("Samples").insert({e.attributes.at("object")});
  };
  engine.add_rule(std::move(r));
  db.attach_rules(&engine, &log);
  db.tick(0);
  EXPECT_EQ(log.get("Samples").size(), 2u);  // temp + pressure (set semantics)
}

TEST(RtModelTest, Validation) {
  RealTimeDatabase db(2);
  EXPECT_THROW(RealTimeDatabase(0), ModelError);
  EXPECT_THROW(db.add_image({"x", 0, [](Tick) { return Value{std::int64_t{0}}; }}),
               ModelError);
  EXPECT_THROW(db.add_image({"x", 1, nullptr}), ModelError);
  db.add_invariant("x", Value{std::int64_t{1}});
  EXPECT_THROW(db.add_invariant("x", Value{std::int64_t{2}}), ModelError);
  EXPECT_THROW(db.archive("nope"), ModelError);
  EXPECT_THROW(db.image_period("nope"), ModelError);
}

}  // namespace
