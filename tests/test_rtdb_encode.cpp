// Tests for section 5.1.3: the db_0 / db_k / db_B words, aperiodic and
// periodic query words, Lemma 5.1, and the Definition 5.1 recognition
// acceptor.

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/rtdb/algebra.hpp"
#include "rtw/rtdb/encode.hpp"
#include "rtw/rtdb/recognition.hpp"
#include "rtw/engine/engine.hpp"

namespace {

using namespace rtw::rtdb;
using rtw::core::Certificate;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedWord;
using rtw::deadline::Usefulness;

RtdbWordSpec sensor_spec() {
  RtdbWordSpec spec;
  spec.invariants = {{"units", Value{std::string("celsius")}}};
  spec.derived = {{"comfort", Value{std::int64_t{0}}}};
  spec.images.push_back({"temp", 5, [](Tick t) {
                           return Value{static_cast<std::int64_t>(20 + t % 7)};
                         }});
  spec.images.push_back({"rain", 7, [](Tick t) {
                           return Value{static_cast<std::int64_t>(t / 7)};
                         }});
  return spec;
}

/// Queries over the reconstructed Objects relation: image objects whose
/// integer value exceeds a threshold.  "hot" (> 21) varies with the temp
/// sampler's phase; "warm" (>= 20) always holds for temp.
QueryCatalog sensor_catalog() {
  auto image_over = [](std::int64_t threshold) {
    return [threshold](const Database& db) {
      const auto& objects = db.get("Objects");
      const auto matching =
          select(objects, [threshold](const Relation& rel, const Tuple& t) {
            if (rel.field(t, "Kind") != Value{std::string("image")})
              return false;
            const auto* v = std::get_if<std::int64_t>(&rel.field(t, "Value"));
            return v && *v > threshold;
          });
      return project(matching, {"Name"});
    };
  };
  QueryCatalog catalog;
  catalog.add(Query("hot", image_over(21)));
  catalog.add(Query("warm", image_over(19)));
  return catalog;
}

// ---------------------------------------------------------------- db words

TEST(DbWordTest, Db0LayoutIsVDollarDDollar) {
  const auto w = build_db0(sensor_spec());
  ASSERT_TRUE(w.length().has_value());
  // Starts with an object group for "units".
  EXPECT_EQ(w.at(0).sym, qmarks::object());
  EXPECT_EQ(w.at(1).sym, Symbol::chr('u'));
  // Exactly two dollars, all at time 0.
  std::size_t dollars = 0;
  for (std::uint64_t i = 0; i < *w.length(); ++i) {
    EXPECT_EQ(w.at(i).time, 0u);
    if (w.at(i).sym == rtw::core::marks::dollar()) ++dollars;
  }
  EXPECT_EQ(dollars, 2u);
}

TEST(DbWordTest, DbkCarriesSamplesAtMultiplesOfPeriod) {
  const auto spec = sensor_spec();
  const auto w = build_dbk(spec.images[0]);  // temp, period 5
  EXPECT_TRUE(w.infinite());
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Group i at time 5*i; check the first three group openers.
  std::vector<Tick> group_times;
  for (std::uint64_t i = 0; i < 64 && group_times.size() < 3; ++i)
    if (w.at(i).sym == qmarks::object()) group_times.push_back(w.at(i).time);
  EXPECT_EQ(group_times, (std::vector<Tick>{0, 5, 10}));
}

TEST(DbWordTest, DbBMergesInTimeOrder) {
  const auto w = build_dbB(sensor_spec());
  EXPECT_TRUE(w.infinite());
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  Tick prev = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    EXPECT_GE(w.at(i).time, prev) << "i=" << i;
    prev = w.at(i).time;
  }
}

TEST(DbWordTest, RenderRelationalMatchesSamplers) {
  const auto db = render_relational(sensor_spec(), 12);
  const auto& objects = db.get("Objects");
  EXPECT_EQ(objects.size(), 4u);  // units, comfort, temp, rain
  // temp's latest sample at or before 12 is t=10: 20 + 10%7 = 23.
  const auto temp = select_eq(objects, "Name", Value{std::string("temp")});
  ASSERT_EQ(temp.size(), 1u);
  EXPECT_EQ(temp.tuples()[0][2], Value{std::int64_t{23}});
  EXPECT_EQ(temp.tuples()[0][3], Value{std::int64_t{10}});
}

// -------------------------------------------------------------- query words

TEST(QueryWordTest, AqNoDeadlineLayout) {
  AperiodicQuerySpec spec;
  spec.query = "hot";
  spec.candidate = {Value{std::string("temp")}};
  spec.issue_time = 9;
  const auto w = build_aq(spec);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  EXPECT_EQ(w.at(0).sym, qmarks::query());
  EXPECT_EQ(w.at(0).time, 9u);
  // After the header: wq forever from time 10.
  std::uint64_t i = 0;
  while (!(w.at(i).sym == qmarks::waiting())) ++i;
  EXPECT_EQ(w.at(i).time, 10u);
  EXPECT_EQ(w.at(i + 1).time, 11u);
}

TEST(QueryWordTest, AqFirmCarriesMinAndDeadlinePairs) {
  AperiodicQuerySpec spec;
  spec.query = "hot";
  spec.candidate = {Value{std::string("temp")}};
  spec.issue_time = 4;
  spec.usefulness = Usefulness::firm(6, 9);
  spec.min_acceptable = 3;
  const auto w = build_aq(spec);
  EXPECT_EQ(w.at(1).sym, Symbol::nat(3));  // min after the ? opener
  // dq appears first at absolute time 4 + 6 = 10.
  std::uint64_t i = 0;
  while (!(w.at(i).sym == qmarks::deadline())) ++i;
  EXPECT_EQ(w.at(i).time, 10u);
  EXPECT_EQ(w.at(i + 1).sym, Symbol::nat(0));
}

TEST(QueryWordTest, AqValidation) {
  AperiodicQuerySpec spec;
  spec.query = "q";
  spec.usefulness = Usefulness::firm(0, 5);
  EXPECT_THROW(build_aq(spec), rtw::core::ModelError);
  spec.usefulness = Usefulness::firm(3, 5);
  spec.min_acceptable = 9;
  EXPECT_THROW(build_aq(spec), rtw::core::ModelError);
}

TEST(QueryWordTest, PqRepeatsHeaders) {
  PeriodicQuerySpec spec;
  spec.query = "hot";
  spec.candidate = [](std::uint64_t i) {
    return Tuple{Value{static_cast<std::int64_t>(i)}};
  };
  spec.issue_time = 2;
  spec.period = 10;
  const auto w = build_pq(spec);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
  // Count query openers among the first 600 symbols: invocations at
  // 2, 12, 22, ...
  std::vector<Tick> openers;
  for (std::uint64_t i = 0; i < 600 && openers.size() < 3; ++i)
    if (w.at(i).sym == qmarks::query()) openers.push_back(w.at(i).time);
  EXPECT_EQ(openers, (std::vector<Tick>{2, 12, 22}));
}

TEST(QueryWordTest, PqSymbolDensityGrows) {
  // Lemma 5.1's setting: each invocation keeps contributing symbols, so
  // the per-tick symbol count grows linearly -- yet the word stays
  // well-behaved.
  PeriodicQuerySpec spec;
  spec.query = "q";
  spec.candidate = [](std::uint64_t) { return Tuple{Value{std::int64_t{1}}}; };
  spec.issue_time = 0;
  spec.period = 5;
  const auto w = build_pq(spec);
  // Count symbols at tick 6 vs tick 21 (2 vs 5 active invocations).
  auto count_at = [&](Tick t) {
    std::size_t n = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
      if (w.at(i).time > t) break;
      if (w.at(i).time == t) ++n;
    }
    return n;
  };
  EXPECT_GT(count_at(21), count_at(6));
}

TEST(Lemma51Test, IndexIsFiniteAndMonotone) {
  PeriodicQuerySpec spec;
  spec.query = "q";
  spec.candidate = [](std::uint64_t) { return Tuple{Value{std::int64_t{7}}}; };
  spec.issue_time = 1;
  spec.period = 3;
  spec.usefulness = Usefulness::firm(2, 4);
  spec.min_acceptable = 1;
  const auto w = build_pq(spec);
  std::uint64_t prev = 0;
  for (Tick k : {1u, 5u, 10u, 20u, 40u}) {
    const auto idx = lemma51_index(w, k, 1u << 18);
    ASSERT_TRUE(idx.has_value()) << "k=" << k;  // Lemma 5.1: always finite
    EXPECT_GE(*idx, prev);
    prev = *idx;
    EXPECT_GE(w.at(*idx).time, k);
    if (*idx > 0) {
      EXPECT_LT(w.at(*idx - 1).time, k);
    }
  }
}

// ------------------------------------------------------------- recognition

TEST(ClassicalRecognitionTest, HoldsIffTupleInResult) {
  RtdbWordSpec spec = sensor_spec();
  const auto db = render_relational(spec, 10);
  QueryCatalog catalog = sensor_catalog();
  const Query& q = catalog.get("hot");
  // temp at t=10 is 23 > 20 -> in result; rain is 1 -> not.
  EXPECT_TRUE(recognition_holds(q, db, {Value{std::string("temp")}}));
  EXPECT_FALSE(recognition_holds(q, db, {Value{std::string("rain")}}));
  const auto w = classical_recognition_word(db, {Value{std::string("temp")}});
  EXPECT_TRUE(w.length().has_value());
  EXPECT_EQ(w.well_behaved(), Certificate::Refuted);  // classical word
}

TimedWord recognition_word(const RtdbWordSpec& db_spec,
                           const AperiodicQuerySpec& q_spec) {
  return rtw::core::concat(build_dbB(db_spec), build_aq(q_spec));
}

TEST(RecognitionAcceptorTest, AcceptsTrueAperiodicMembership) {
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("temp")}};
  q.issue_time = 12;  // temp@10 = 23 > 20
  const auto w = recognition_word(sensor_spec(), q);
  RecognitionAcceptor acceptor(sensor_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(acceptor.served(), 1u);
}

TEST(RecognitionAcceptorTest, RejectsFalseMembership) {
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("rain")}};  // rain values stay small
  q.issue_time = 12;
  const auto w = recognition_word(sensor_spec(), q);
  RecognitionAcceptor acceptor(sensor_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(acceptor.failed(), 1u);
}

TEST(RecognitionAcceptorTest, FirmDeadlineRejectsSlowEvaluation) {
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("temp")}};
  q.issue_time = 12;
  q.usefulness = Usefulness::firm(2, 5);  // evaluation costs 4 (db size)
  q.min_acceptable = 1;
  const auto w = recognition_word(sensor_spec(), q);
  RecognitionAcceptor acceptor(sensor_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_FALSE(r.accepted);
}

TEST(RecognitionAcceptorTest, LooseDeadlineAccepts) {
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("temp")}};
  q.issue_time = 12;
  q.usefulness = Usefulness::firm(50, 5);
  q.min_acceptable = 1;
  const auto w = recognition_word(sensor_spec(), q);
  RecognitionAcceptor acceptor(sensor_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_TRUE(r.accepted);
}

TEST(RecognitionAcceptorTest, PeriodicServesRepeatedly) {
  PeriodicQuerySpec pq;
  pq.query = "warm";  // holds for temp at every sample phase
  pq.candidate = [](std::uint64_t) {
    return Tuple{Value{std::string("temp")}};
  };
  pq.issue_time = 12;
  pq.period = 25;
  const auto w = rtw::core::concat(build_dbB(sensor_spec()), build_pq(pq));
  RecognitionAcceptor acceptor(sensor_catalog(), linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 400;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  EXPECT_TRUE(r.accepted);     // trailing-f heuristic
  EXPECT_FALSE(r.exact);       // never locks: infinitely many invocations
  EXPECT_GE(acceptor.served(), 5u);
  EXPECT_EQ(acceptor.failed(), 0u);
}

TEST(RecognitionLanguageTest, MembershipWrapsAcceptor) {
  auto lang = recognition_language(sensor_catalog(), linear_cost(), 600);
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("temp")}};
  q.issue_time = 12;
  EXPECT_TRUE(lang.contains(recognition_word(sensor_spec(), q)));
  q.candidate = {Value{std::string("rain")}};
  EXPECT_FALSE(lang.contains(recognition_word(sensor_spec(), q)));
}

// Property sweep: Definition 5.1 membership tracks ground truth across
// issue times (the reconstructed DB must reflect the latest samples).
class IssueTimeProperty : public ::testing::TestWithParam<Tick> {};

TEST_P(IssueTimeProperty, MembershipMatchesGroundTruth) {
  const Tick t = GetParam();
  const auto spec = sensor_spec();
  QueryCatalog catalog = sensor_catalog();
  AperiodicQuerySpec q;
  q.query = "hot";
  q.candidate = {Value{std::string("temp")}};
  q.issue_time = t;
  const auto w = recognition_word(spec, q);
  RecognitionAcceptor acceptor(catalog, linear_cost());
  rtw::core::RunOptions options;
  options.horizon = 600;
  const auto r = rtw::engine::run(acceptor, w, options).result;
  const bool truth = recognition_holds(catalog.get("hot"),
                                       render_relational(spec, t),
                                       {Value{std::string("temp")}});
  EXPECT_EQ(r.accepted, truth) << "issue_time=" << t;
}

INSTANTIATE_TEST_SUITE_P(IssueTimes, IssueTimeProperty,
                         ::testing::Values<Tick>(3, 6, 9, 12, 16, 21, 27, 33));

}  // namespace

// --------------------------------------- Lemma 5.1's explicit index bound

namespace lemma_bound {

using namespace rtw::rtdb;
using rtw::core::Tick;

TEST(Lemma51BoundTest, IndexRespectsThePapersFormula) {
  // Lemma 5.1's counting argument: symbols with tau_j < k comprise at most
  // (i+1) query-header encodings plus 2k symbols per active invocation,
  // where i is the number of invocations issued by time k.  With header
  // length L <= 32 for these candidates the bound is
  // k' <= (i+1) * 32 + 2k(i+1).
  PeriodicQuerySpec spec;
  spec.query = "q";
  spec.candidate = [](std::uint64_t) { return Tuple{Value{std::int64_t{7}}}; };
  spec.issue_time = 1;
  spec.period = 3;
  spec.usefulness = rtw::deadline::Usefulness::firm(2, 4);
  spec.min_acceptable = 1;
  const auto w = build_pq(spec);
  for (Tick k : {4u, 16u, 64u, 128u}) {
    const auto idx = lemma51_index(w, k, 1u << 22);
    ASSERT_TRUE(idx.has_value());
    const std::uint64_t invocations = (k - spec.issue_time) / spec.period + 1;
    const std::uint64_t bound =
        (invocations + 1) * 32 + 2 * k * (invocations + 1);
    EXPECT_LE(*idx, bound) << "k=" << k;
  }
}

}  // namespace lemma_bound
