#pragma once
/// \file proptest.hpp
/// Minimal property-based testing harness for the fault-injection suite.
///
/// A property is a callable `(rtw::sim::Xoshiro256ss& rng, std::size_t size)
/// -> std::optional<std::string>` that draws a random scenario from `rng`
/// (scaled by `size`), checks an invariant, and returns a violation message
/// or nullopt.  The harness runs `Config::cases` cases with sizes ramping
/// from small to `max_size`; every case's generator is seeded from
/// (Config::seed, case index) alone, so any failure is reproducible from
/// the printed (seed, index, size) triple.
///
/// Shrink-on-failure: because the scenario is a deterministic function of
/// (case seed, size), re-running the same case at smaller sizes is a valid
/// shrink.  The greedy loop walks the size down while the property still
/// fails and reports the smallest failing size.
///
/// CI artifact: when the RTW_PROPTEST_ARTIFACT environment variable names
/// a file, every failure appends one JSON line (property, seed, case
/// index, original and shrunk size, message) so the failing seed survives
/// the CI run as an uploadable artifact.
///
/// Alongside the engine live the generators the fault suite shares: random
/// finite / lasso / generator TimedWords and random FaultPlans.

#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "rtw/core/timed_word.hpp"
#include "rtw/sim/fault.hpp"
#include "rtw/sim/jsonl.hpp"
#include "rtw/sim/rng.hpp"

namespace rtw::proptest {

struct Config {
  std::uint64_t seed = 0x70726f7074ULL;  ///< suite seed ("propt")
  std::size_t cases = 500;               ///< generated cases per property
  std::size_t max_size = 24;             ///< upper bound of the size ramp
  std::size_t max_shrink_steps = 64;     ///< cap on the shrink loop
};

/// One property violation, after shrinking.
struct Failure {
  std::size_t index = 0;          ///< failing case index
  std::uint64_t case_seed = 0;    ///< rng seed of the failing case
  std::size_t size = 0;           ///< size at which it first failed
  std::size_t shrunk_size = 0;    ///< smallest size that still fails
  std::string message;            ///< the property's violation message
  std::string shrunk_message;     ///< violation at the shrunk size
};

struct Result {
  std::size_t cases_run = 0;
  std::optional<Failure> failure;  ///< first failing case, shrunk

  bool ok() const { return !failure.has_value(); }
};

/// The per-case generator: a pure function of (suite seed, case index),
/// mirroring engine::BatchRunner::rng_for so property cases are as
/// replayable as batch jobs.
inline rtw::sim::Xoshiro256ss rng_for(std::uint64_t seed,
                                      std::uint64_t index) noexcept {
  rtw::sim::SplitMix64 mix(seed ^ (index * 0x9e3779b97f4a7c15ULL));
  return rtw::sim::Xoshiro256ss(mix());
}

/// Renders a shrunk failure for gtest output and the CI artifact.
inline std::string describe(std::string_view property, const Config& cfg,
                            const Failure& f) {
  rtw::sim::JsonLine line;
  line.field("property", property)
      .field("seed", cfg.seed)
      .field("case_index", f.index)
      .field("case_seed", f.case_seed)
      .field("size", f.size)
      .field("shrunk_size", f.shrunk_size)
      .field("message", f.shrunk_message);
  return line.str();
}

/// Appends the failure to $RTW_PROPTEST_ARTIFACT (JSONL) when set, so CI
/// can upload failing seeds on property-test failure.
inline void export_failure(std::string_view property, const Config& cfg,
                           const Failure& f) {
  const char* path = std::getenv("RTW_PROPTEST_ARTIFACT");
  if (!path || !*path) return;
  std::ofstream out(path, std::ios::app);
  if (out) out << describe(property, cfg, f) << '\n';
}

/// Runs `property` over Config::cases generated cases.  Stops at the first
/// failure, shrinks it greedily by size, exports the artifact line, and
/// returns the result.  Deterministic for a fixed Config.
template <typename Property>
Result run_property(std::string_view name, const Config& cfg,
                    Property&& property) {
  Result result;
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    // Size ramp: small scenarios first (cheap, shrink-friendly), the full
    // max_size by the end of the run.
    const std::size_t size =
        1 + (cfg.cases > 1 ? i * (cfg.max_size - 1) / (cfg.cases - 1) : 0);
    const std::uint64_t case_seed = cfg.seed ^ (i * 0x9e3779b97f4a7c15ULL);
    auto rng = rng_for(cfg.seed, i);
    ++result.cases_run;
    auto violation = property(rng, size);
    if (!violation) continue;

    Failure f;
    f.index = i;
    f.case_seed = case_seed;
    f.size = size;
    f.shrunk_size = size;
    f.message = *violation;
    f.shrunk_message = *violation;
    // Greedy shrink: keep halving toward 1 while the same case (same rng
    // stream) still fails; a passing size ends the walk from above.
    std::size_t lo = 1, hi = f.shrunk_size;
    for (std::size_t step = 0; step < cfg.max_shrink_steps && lo < hi;
         ++step) {
      const std::size_t mid = lo + (hi - lo) / 2;
      auto shrink_rng = rng_for(cfg.seed, i);
      if (auto v = property(shrink_rng, mid)) {
        hi = mid;
        f.shrunk_size = mid;
        f.shrunk_message = *v;
      } else {
        lo = mid + 1;
      }
    }
    export_failure(name, cfg, f);
    result.failure = f;
    return result;
  }
  return result;
}

// --------------------------------------------------------- word generators

/// Random nondecreasing time sequence of `len` entries starting at
/// `start`, gaps in [0, max_gap].
inline std::vector<rtw::core::Tick> random_times(rtw::sim::Xoshiro256ss& rng,
                                                 std::size_t len,
                                                 rtw::core::Tick start,
                                                 std::uint64_t max_gap) {
  std::vector<rtw::core::Tick> times(len);
  rtw::core::Tick t = start;
  for (std::size_t i = 0; i < len; ++i) {
    t += rng.uniform(max_gap + 1);
    times[i] = t;
  }
  return times;
}

/// Random finite word over a small letter alphabet, length in [1, size].
inline rtw::core::TimedWord random_finite_word(rtw::sim::Xoshiro256ss& rng,
                                               std::size_t size) {
  const std::size_t len = 1 + rng.uniform(size);
  const auto times = random_times(rng, len, rng.uniform(4), 3);
  std::vector<rtw::core::TimedSymbol> symbols(len);
  for (std::size_t i = 0; i < len; ++i)
    symbols[i] = {rtw::core::Symbol::chr(static_cast<char>(
                      'a' + rng.uniform(std::uint64_t{4}))),
                  times[i]};
  return rtw::core::TimedWord::finite(std::move(symbols));
}

/// Random ultimately periodic word: prefix up to size/2, cycle in
/// [1, size], period chosen to satisfy the lasso wraparound invariant.
inline rtw::core::TimedWord random_lasso_word(rtw::sim::Xoshiro256ss& rng,
                                              std::size_t size) {
  const std::size_t prefix_len = rng.uniform(size / 2 + 1);
  const std::size_t cycle_len = 1 + rng.uniform(size);
  const auto prefix_times = random_times(rng, prefix_len, 0, 2);
  const rtw::core::Tick junction =
      prefix_times.empty() ? 0 : prefix_times.back();
  const auto cycle_times = random_times(rng, cycle_len, junction, 2);

  std::vector<rtw::core::TimedSymbol> prefix(prefix_len);
  for (std::size_t i = 0; i < prefix_len; ++i)
    prefix[i] = {rtw::core::Symbol::chr(static_cast<char>(
                     'a' + rng.uniform(std::uint64_t{4}))),
                 prefix_times[i]};
  std::vector<rtw::core::TimedSymbol> cycle(cycle_len);
  for (std::size_t i = 0; i < cycle_len; ++i)
    cycle[i] = {rtw::core::Symbol::chr(static_cast<char>(
                    'a' + rng.uniform(std::uint64_t{4}))),
                cycle_times[i]};
  // Wraparound (cycle.front + period >= cycle.back) plus progress
  // (period > 0): any period >= span + 1 works.
  const rtw::core::Tick span = cycle_times.back() - cycle_times.front();
  const rtw::core::Tick period = span + 1 + rng.uniform(std::uint64_t{4});
  return rtw::core::TimedWord::lasso(std::move(prefix), std::move(cycle),
                                     period);
}

/// Random generator-backed infinite word: symbol and gap laws are pure
/// functions of (word seed, index), as the Generator contract requires.
inline rtw::core::TimedWord random_generator_word(rtw::sim::Xoshiro256ss& rng,
                                                  std::size_t size) {
  const std::uint64_t word_seed = rng();
  const std::uint64_t stride = 1 + rng.uniform(std::uint64_t{3});
  (void)size;
  return rtw::core::TimedWord::generator(
      [word_seed, stride](std::uint64_t i) {
        rtw::sim::SplitMix64 mix(word_seed ^
                                 (i * 0x9e3779b97f4a7c15ULL));
        const std::uint64_t draw = mix();
        return rtw::core::TimedSymbol{
            rtw::core::Symbol::chr(static_cast<char>('a' + draw % 4)),
            i * stride + draw % 2};
      },
      {.monotone_proven = false, .progress_proven = false}, "proptest-gen");
}

/// Random word of any representation (finite / lasso / generator).
inline rtw::core::TimedWord random_timed_word(rtw::sim::Xoshiro256ss& rng,
                                              std::size_t size) {
  switch (rng.uniform(std::uint64_t{3})) {
    case 0:
      return random_finite_word(rng, size);
    case 1:
      return random_lasso_word(rng, size);
    default:
      return random_generator_word(rng, size);
  }
}

// --------------------------------------------------------- plan generators

/// Random fault plan over an `n`-node network.  `size` scales adversity:
/// larger sizes mean higher probabilities, longer delays, more outages.
/// Roughly one plan in eight is a noop, so the fault-free path stays in
/// every property's sample.
inline rtw::sim::FaultPlan random_fault_plan(rtw::sim::Xoshiro256ss& rng,
                                             std::uint32_t n,
                                             std::size_t size) {
  rtw::sim::FaultPlan plan;
  plan.seed = rng();
  if (rng.uniform(std::uint64_t{8}) == 0) return plan;  // noop

  const double intensity =
      static_cast<double>(size) / 48.0;  // (0, 0.5] over the size ramp
  plan.link.drop = rng.bernoulli(0.7) ? rng.uniform_real(0.0, intensity) : 0.0;
  plan.link.duplicate =
      rng.bernoulli(0.4) ? rng.uniform_real(0.0, intensity) : 0.0;
  if (rng.bernoulli(0.4)) {
    plan.link.delay = rng.uniform_real(0.0, intensity);
    plan.link.max_delay = 1 + rng.uniform(std::uint64_t{3});
  }
  if (n > 0 && rng.bernoulli(0.3)) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(n));
    const rtw::sim::Tick len = 1 + rng.uniform(std::uint64_t{20});
    const rtw::sim::Tick start = rng.uniform(std::uint64_t{40});
    plan.outages.push_back({from, start, start + len});
  }
  if (rng.bernoulli(0.3)) {
    plan.jitter.probability = rng.uniform_real(0.0, intensity);
    plan.jitter.max_jitter = 1 + rng.uniform(std::uint64_t{3});
  }
  if (n > 1 && rng.bernoulli(0.25)) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform(n));
    rtw::sim::LinkFaults lf;
    lf.drop = rng.uniform_real(0.0, 2.0 * intensity);
    plan.link_overrides.push_back({{a, b}, lf});
  }
  return plan;
}

}  // namespace rtw::proptest
