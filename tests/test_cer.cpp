/// \file test_cer.cpp
/// The timed-pattern query subsystem: parser, compiler, runtime acceptor,
/// reference evaluator, and the compiled-vs-reference differential
/// property (standalone and through SessionManager at 1 and 8 shards).

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proptest.hpp"
#include "rtw/cer/acceptor.hpp"
#include "rtw/cer/compile.hpp"
#include "rtw/cer/parser.hpp"
#include "rtw/cer/query.hpp"
#include "rtw/cer/reference.hpp"
#include "rtw/core/error.hpp"
#include "rtw/svc/service.hpp"

using rtw::core::StreamEnd;
using rtw::core::Symbol;
using rtw::core::Tick;
using rtw::core::TimedSymbol;
using rtw::core::Verdict;
namespace cer = rtw::cer;

namespace {

std::vector<TimedSymbol> word_of(
    std::initializer_list<std::pair<char, Tick>> elems) {
  std::vector<TimedSymbol> out;
  for (const auto& [c, t] : elems) out.push_back({Symbol::chr(c), t});
  return out;
}

/// Compiles or aborts the test.
cer::CompiledQuery must_compile(const cer::Query& q,
                                cer::CompileLimits limits = {}) {
  auto r = cer::compile(q, limits);
  EXPECT_TRUE(r.ok()) << r.error;
  return std::move(*r.compiled);
}

Verdict run_to_end(const cer::CompiledQuery& compiled,
                   std::span<const TimedSymbol> word,
                   StreamEnd end = StreamEnd::EndOfWord) {
  cer::CerAcceptor acceptor(compiled);
  for (const auto& e : word) acceptor.feed(e.sym, e.time);
  return acceptor.finish(end);
}

}  // namespace

// ============================================================== 1. parser

TEST(CerParser, AtomsAndPrecedence) {
  // `|` binds loosest, then `;`, then `+`.
  auto r = cer::parse("a ; b | c+");
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& root = r.query->root();
  ASSERT_EQ(root->kind, cer::Node::Kind::Alt);
  EXPECT_EQ(root->left->kind, cer::Node::Kind::Seq);
  EXPECT_EQ(root->right->kind, cer::Node::Kind::Iter);
  EXPECT_EQ(r.query->text(), "a ; b | c+");

  // Every atom form: bare letter, quoted char, nat, marker, wildcard.
  auto atoms = cer::parse("x ; '3' ; 42 ; <boom> ; .");
  ASSERT_TRUE(atoms.ok()) << atoms.error;
  std::vector<Symbol> expected{Symbol::chr('x'), Symbol::chr('3'),
                               Symbol::nat(42), Symbol::marker("boom")};
  const cer::Node* n = atoms.query->root().get();
  std::vector<const cer::Node*> leaves;
  // Left-assoc Seq spine: ((((x ; '3') ; 42) ; <boom>) ; .)
  while (n->kind == cer::Node::Kind::Seq) {
    leaves.push_back(n->right.get());
    n = n->left.get();
  }
  leaves.push_back(n);
  ASSERT_EQ(leaves.size(), 5u);
  EXPECT_EQ(leaves[0]->pred.kind, cer::SymbolPred::Kind::Any);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& pred = leaves[leaves.size() - 1 - i]->pred;
    EXPECT_EQ(pred.kind, cer::SymbolPred::Kind::Exact);
    EXPECT_EQ(pred.sym, expected[i]);
  }
}

TEST(CerParser, WithinGroupsAndParens) {
  auto r = cer::parse("within(7){ a ; (b | c)+ }");
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& root = r.query->root();
  ASSERT_EQ(root->kind, cer::Node::Kind::Within);
  EXPECT_EQ(root->window, 7u);
  EXPECT_EQ(root->left->kind, cer::Node::Kind::Seq);
  EXPECT_EQ(root->left->right->kind, cer::Node::Kind::Iter);
}

TEST(CerParser, RejectsMalformedInput) {
  for (const char* bad : {
           "",                // nothing
           "a ;",             // dangling operator
           "(a",              // unclosed group
           "a)",              // trailing junk
           "within(){a}",     // missing window
           "within(3) a",     // missing braces
           "within(3){}",     // empty body
           "ab",              // unknown keyword
           "'x",              // unterminated literal
           "<>",              // empty marker
           "<m",              // unterminated marker
           "+",               // operator without operand
           "a | | b",         // operator gap
           "99999999999999999999",  // nat overflow
       }) {
    auto r = cer::parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(CerParser, DeepNestingIsAnErrorNotACrash) {
  std::string bomb(4096, '(');
  bomb += 'a';
  bomb.append(4096, ')');
  auto r = cer::parse(bomb);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("nesting"), std::string::npos);
}

TEST(CerParser, CanonicalTextRoundTrips) {
  for (const char* text : {"a", "a ; b | c+", "within(3){ a ; b }",
                           "(a | b) ; c", "((a ; b) | c)+",
                           "within(2){ within(1){ a ; b } ; c }",
                           ". ; '(' ; <m> ; 7"}) {
    auto first = cer::parse(text);
    ASSERT_TRUE(first.ok()) << text << ": " << first.error;
    const std::string canon = first.query->to_string();
    auto second = cer::parse(canon);
    ASSERT_TRUE(second.ok()) << canon << ": " << second.error;
    EXPECT_EQ(second.query->to_string(), canon) << "from " << text;
  }
}

// ============================================================ 2. compiler

TEST(CerCompile, PositionAutomatonShape) {
  // a ; (b | c)+  -- 3 positions + start; transitions: start->a,
  // a->{b,c}, loop-backs {b,c}x{b,c}.
  auto compiled = must_compile(*cer::parse("a ; (b | c)+").query);
  EXPECT_EQ(compiled.num_states, 4u);
  EXPECT_EQ(compiled.num_clocks, 0u);
  EXPECT_EQ(compiled.transitions.size(), 1u + 2u + 4u);
  EXPECT_FALSE(compiled.accepting[0]);
  std::size_t accepting = 0;
  for (bool a : compiled.accepting) accepting += a ? 1 : 0;
  EXPECT_EQ(accepting, 2u);  // b and c positions
}

TEST(CerCompile, WithinAllocatesClocksAndCapsValuations) {
  auto compiled =
      must_compile(*cer::parse("within(9){ a ; b } ; within(4){ c ; d }").query);
  EXPECT_EQ(compiled.num_clocks, 2u);
  EXPECT_EQ(compiled.clock_cap, 10u);  // cmax + 1
}

TEST(CerCompile, LimitsRefuseStructuralBlowups) {
  // 33 nested within() -> clock limit.
  std::string nested;
  for (int i = 0; i < 33; ++i) nested += "within(1){ ";
  nested += "a";
  for (int i = 0; i < 33; ++i) nested += " }";
  auto parsed = cer::parse(nested);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  auto r = cer::compile(*parsed.query);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("clock"), std::string::npos);

  // (x1|...|x70)+ -> ~70^2 loop-backs, past the transition limit.
  cer::Query wide = cer::chr('a');
  for (int i = 0; i < 69; ++i) wide = cer::alt(std::move(wide), cer::any());
  auto big = cer::compile(cer::iter(std::move(wide)));
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.error.find("transition"), std::string::npos);

  EXPECT_FALSE(cer::compile(cer::Query{}).ok());  // empty query
}

// ===================================================== 3. runtime acceptor

TEST(CerAcceptor, AnchoredSequenceSemantics) {
  auto compiled = must_compile(*cer::parse("a ; b").query);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'b', 1}})),
            Verdict::Accepting);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}})), Verdict::Rejecting);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'b', 1}, {'c', 2}})),
            Verdict::Rejecting);
  EXPECT_EQ(run_to_end(compiled, {}), Verdict::Rejecting);  // no empty word
}

TEST(CerAcceptor, DeadConfigSetLocksRejectingEarly) {
  auto compiled = must_compile(*cer::parse("a ; b").query);
  cer::CerAcceptor acceptor(compiled);
  EXPECT_EQ(acceptor.feed(Symbol::chr('x'), 0), Verdict::Rejecting);
  EXPECT_TRUE(acceptor.result().exact);
  // Final verdicts are sticky; further feeds are no-ops.
  EXPECT_EQ(acceptor.feed(Symbol::chr('a'), 1), Verdict::Rejecting);
  EXPECT_EQ(acceptor.finish(StreamEnd::EndOfWord), Verdict::Rejecting);
  EXPECT_EQ(acceptor.result().symbols_consumed, 1u);
}

TEST(CerAcceptor, WindowConstraintUsesEventTimes) {
  auto compiled = must_compile(*cer::parse("within(3){ a ; b }").query);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 10}, {'b', 13}})),
            Verdict::Accepting);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 10}, {'b', 14}})),
            Verdict::Rejecting);
  // Single-event within: trivially inside any window.
  auto single = must_compile(*cer::parse("within(0){ a }").query);
  EXPECT_EQ(run_to_end(single, word_of({{'a', 99}})), Verdict::Accepting);
}

TEST(CerAcceptor, IterationReopensWindowsPerPass) {
  // Each a;b pass must fit in 2 ticks, but passes may be far apart.
  auto compiled = must_compile(*cer::parse("(within(2){ a ; b })+").query);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'b', 2}, {'a', 50},
                                          {'b', 51}})),
            Verdict::Accepting);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'b', 2}, {'a', 50},
                                          {'b', 53}})),
            Verdict::Rejecting);
}

TEST(CerAcceptor, WindowOverWholeIteration) {
  auto compiled = must_compile(*cer::parse("within(5){ (a)+ }").query);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'a', 3}, {'a', 5}})),
            Verdict::Accepting);
  EXPECT_EQ(run_to_end(compiled, word_of({{'a', 0}, {'a', 3}, {'a', 6}})),
            Verdict::Rejecting);
}

TEST(CerAcceptor, TruncatedFinishIsInexact) {
  auto compiled = must_compile(*cer::parse("a ; b").query);
  cer::CerAcceptor acceptor(compiled);
  acceptor.feed(Symbol::chr('a'), 0);
  acceptor.feed(Symbol::chr('b'), 1);
  EXPECT_EQ(acceptor.verdict(), Verdict::Undetermined);  // anchored: not yet
  EXPECT_EQ(acceptor.finish(StreamEnd::Truncated), Verdict::Accepting);
  EXPECT_FALSE(acceptor.result().exact);

  acceptor.reset();
  acceptor.feed(Symbol::chr('a'), 0);
  acceptor.feed(Symbol::chr('b'), 1);
  EXPECT_EQ(acceptor.finish(StreamEnd::EndOfWord), Verdict::Accepting);
  EXPECT_TRUE(acceptor.result().exact);
  EXPECT_EQ(acceptor.result().f_count, 1u);       // accepting config at b@1
  ASSERT_TRUE(acceptor.result().first_f.has_value());
  EXPECT_EQ(*acceptor.result().first_f, 1u);
}

TEST(CerAcceptor, NonMonotoneFeedThrows) {
  auto compiled = must_compile(*cer::parse("(a)+").query);
  cer::CerAcceptor acceptor(compiled);
  acceptor.feed(Symbol::chr('a'), 5);
  EXPECT_THROW(acceptor.feed(Symbol::chr('a'), 3), rtw::core::ModelError);
}

TEST(CerAcceptor, FactoryRefusesOversizedQueriesWithNullptr) {
  EXPECT_EQ(cer::make_online_acceptor(cer::chr('a'),
                                      cer::CompileLimits{.max_states = 0}),
            nullptr);
  auto ok = cer::make_online_acceptor(*cer::parse("a | b").query);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->feed(Symbol::chr('b'), 0), Verdict::Undetermined);
  EXPECT_EQ(ok->finish(StreamEnd::EndOfWord), Verdict::Accepting);
}

// ==================================================== 4. reference evaluator

TEST(CerReference, MatchesHandEvaluatedExamples) {
  const auto q = *cer::parse("within(4){ a ; (b | c)+ }").query;
  const auto yes = word_of({{'a', 0}, {'c', 2}, {'b', 4}});
  const auto no_window = word_of({{'a', 0}, {'c', 2}, {'b', 5}});
  const auto no_shape = word_of({{'a', 0}, {'a', 1}});
  EXPECT_TRUE(cer::eval_reference(q, yes));
  EXPECT_FALSE(cer::eval_reference(q, no_window));
  EXPECT_FALSE(cer::eval_reference(q, no_shape));
  EXPECT_FALSE(cer::eval_reference(q, {}));
}

// =========================================== 5. differential property suite

namespace {

/// Random query AST over the word generators' alphabet ('a'..'d' plus
/// the wildcard), node count bounded by `budget`.
cer::Query random_query(rtw::sim::Xoshiro256ss& rng, std::size_t budget) {
  if (budget <= 1 || rng.uniform(std::uint64_t{4}) == 0) {
    if (rng.uniform(std::uint64_t{5}) == 0) return cer::any();
    return cer::chr(static_cast<char>('a' + rng.uniform(std::uint64_t{4})));
  }
  switch (rng.uniform(std::uint64_t{4})) {
    case 0: {
      const std::size_t left = 1 + rng.uniform(budget - 1);
      return cer::seq(random_query(rng, left),
                      random_query(rng, budget - left));
    }
    case 1: {
      const std::size_t left = 1 + rng.uniform(budget - 1);
      return cer::alt(random_query(rng, left),
                      random_query(rng, budget - left));
    }
    case 2:
      return cer::iter(random_query(rng, budget - 1));
    default:
      return cer::within(rng.uniform(std::uint64_t{8}),
                         random_query(rng, budget - 1));
  }
}

/// Random monotone word, then fault-style mutations that preserve
/// monotonicity: drops, duplicates (same timestamp), and cumulative
/// delay jitter -- the wire-level fault modes as seen by one session.
std::vector<TimedSymbol> random_mutated_word(rtw::sim::Xoshiro256ss& rng,
                                             std::size_t size) {
  std::vector<TimedSymbol> word;
  const std::size_t len = rng.uniform(size + 1);
  Tick t = rng.uniform(std::uint64_t{4});
  for (std::size_t i = 0; i < len; ++i) {
    t += rng.uniform(std::uint64_t{4});
    word.push_back({Symbol::chr(static_cast<char>(
                        'a' + rng.uniform(std::uint64_t{4}))),
                    t});
  }
  std::vector<TimedSymbol> mutated;
  Tick shift = 0;
  for (const auto& e : word) {
    if (rng.bernoulli(0.1)) continue;                     // drop
    if (rng.bernoulli(0.1)) shift += rng.uniform(std::uint64_t{3});  // delay
    TimedSymbol out{e.sym, e.time + shift};
    mutated.push_back(out);
    if (rng.bernoulli(0.08)) mutated.push_back(out);      // duplicate
  }
  return mutated;
}

}  // namespace

TEST(CerDifferential, CompiledAcceptorAgreesWithReferenceOnEveryPrefix) {
  rtw::proptest::Config cfg;
  cfg.cases = 500;
  cfg.max_size = 24;
  const auto result = rtw::proptest::run_property(
      "cer_compiled_vs_reference", cfg,
      [](rtw::sim::Xoshiro256ss& rng,
         std::size_t size) -> std::optional<std::string> {
        const cer::Query query =
            random_query(rng, 2 + rng.uniform(std::uint64_t{8}));
        auto compiled = cer::compile(query);
        if (!compiled.ok()) return std::nullopt;  // limits are not a bug
        const auto word = random_mutated_word(rng, size);

        // The canonical rendering must parse back to an equivalent query.
        auto reparsed = cer::parse(query.to_string());
        if (!reparsed.ok())
          return "canonical text failed to parse: " + query.to_string() +
                 " (" + reparsed.error + ")";

        for (std::size_t len = 0; len <= word.size(); ++len) {
          const std::span<const TimedSymbol> prefix(word.data(), len);
          cer::CerAcceptor fresh(*compiled.compiled);
          for (const auto& e : prefix) fresh.feed(e.sym, e.time);
          const bool acc =
              fresh.finish(StreamEnd::EndOfWord) == Verdict::Accepting;
          const bool ref = cer::eval_reference(query, prefix);
          const bool ref2 = cer::eval_reference(*reparsed.query, prefix);
          if (acc != ref)
            return "compiled=" + std::to_string(acc) +
                   " reference=" + std::to_string(ref) + " at prefix " +
                   std::to_string(len) + " of query " + query.to_string();
          if (ref2 != ref)
            return "round-tripped query diverged: " + query.to_string();
        }

        // Incremental run: never Accepting mid-stream (anchored), and a
        // Rejecting lock must be justified by the reference.
        cer::CerAcceptor inc(*compiled.compiled);
        for (std::size_t i = 0; i < word.size(); ++i) {
          const Verdict v = inc.feed(word[i].sym, word[i].time);
          if (v == Verdict::Accepting)
            return "accepting verdict before finish at element " +
                   std::to_string(i);
          if (v == Verdict::Rejecting) {
            const std::span<const TimedSymbol> prefix(word.data(), i + 1);
            if (cer::eval_reference(query, prefix))
              return "early Rejecting lock contradicts the reference at " +
                     std::to_string(i);
          }
        }
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe(
      "cer_compiled_vs_reference", cfg, *result.failure);
  EXPECT_EQ(result.cases_run, cfg.cases);
}

namespace {

/// The same differential, but the compiled side runs as real
/// SessionManager sessions opened through SubmitQuery wire events.
void run_shard_differential(unsigned shards) {
  rtw::svc::ShardConfig shard_cfg;
  shard_cfg.count = shards;
  rtw::svc::IngressConfig ingress_cfg;
  ingress_cfg.ring_capacity = 4096;
  rtw::svc::SessionManager manager(shard_cfg, ingress_cfg);

  rtw::proptest::Config cfg;
  cfg.cases = 500;
  cfg.max_size = 24;
  // Distinct suite seed per shard count so the two runs are independent
  // samples rather than the same 500 scenarios twice.
  cfg.seed ^= shards * 0x5bd1e995u;

  rtw::svc::SessionId next_id = 1;
  const auto result = rtw::proptest::run_property(
      "cer_shard_differential", cfg,
      [&](rtw::sim::Xoshiro256ss& rng,
          std::size_t size) -> std::optional<std::string> {
        const cer::Query query =
            random_query(rng, 2 + rng.uniform(std::uint64_t{8}));
        if (!cer::compile(query).ok()) return std::nullopt;
        const auto word = random_mutated_word(rng, size);

        const rtw::svc::SessionId id = next_id++;
        rtw::svc::WireEvent open;
        open.kind = rtw::svc::WireEvent::Kind::SubmitQuery;
        open.session = id;
        open.profile = query.to_string();
        if (manager.apply(open, {}).admit != rtw::svc::Admit::Accepted)
          return "SubmitQuery refused for " + query.to_string();
        if (!word.empty() &&
            manager.feed_batch(id, word).admit != rtw::svc::Admit::Accepted)
          return "run unexpectedly shed";
        manager.close(id, StreamEnd::EndOfWord);
        manager.drain();

        std::optional<Verdict> verdict;
        for (const auto& report : manager.collect())
          if (report.id == id) verdict = report.verdict;
        if (!verdict) return "no session report collected";
        const bool acc = *verdict == Verdict::Accepting;
        const bool ref = cer::eval_reference(query, word);
        if (acc != ref)
          return "session=" + std::to_string(acc) +
                 " reference=" + std::to_string(ref) + " for query " +
                 query.to_string() + " at " + std::to_string(shards) +
                 " shards";
        return std::nullopt;
      });
  EXPECT_TRUE(result.ok()) << rtw::proptest::describe("cer_shard_differential",
                                                      cfg, *result.failure);
  const auto stats = manager.stats();
  EXPECT_GT(stats.query_compiled, 0u);
  EXPECT_EQ(stats.query_rejected, 0u);
}

}  // namespace

TEST(CerShardDifferential, OneShard) { run_shard_differential(1); }
TEST(CerShardDifferential, EightShards) { run_shard_differential(8); }

// ============================================= 6. service-layer bookkeeping

TEST(CerService, CompileLimitRejectionIsARefusedOpenNotACrash) {
  rtw::svc::SessionManager manager(rtw::svc::ShardConfig{},
                                   rtw::svc::IngressConfig{});
  std::string nested;
  for (int i = 0; i < 33; ++i) nested += "within(1){ ";
  nested += "a";
  for (int i = 0; i < 33; ++i) nested += " }";

  rtw::svc::WireEvent open;
  open.kind = rtw::svc::WireEvent::Kind::SubmitQuery;
  open.session = 7;
  open.profile = nested;
  const auto admitted = manager.apply(open, {});
  EXPECT_EQ(admitted.admit, rtw::svc::Admit::Shed);

  const auto stats = manager.stats();
  EXPECT_EQ(stats.query_rejected, 1u);
  EXPECT_EQ(stats.query_compiled, 0u);
  EXPECT_EQ(stats.opened, 0u);
  manager.drain();
}
