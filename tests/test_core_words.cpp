// Tests for symbols, time sequences and timed omega-words
// (Definitions 3.1 / 3.2, and the section 3.2 classical-word embedding).

#include <gtest/gtest.h>

#include "rtw/core/error.hpp"
#include "rtw/core/symbol.hpp"
#include "rtw/core/timed_word.hpp"

namespace {

using namespace rtw::core;

// ---------------------------------------------------------------- Symbol

TEST(SymbolTest, KindsAreDisjoint) {
  // The paper assumes Sigma, Omega and N are disjoint; Symbol encodes that.
  EXPECT_NE(Symbol::chr('a'), Symbol::nat('a'));
  EXPECT_NE(Symbol::chr('w'), Symbol::marker("w"));
  EXPECT_NE(Symbol::nat(0), Symbol::marker("0"));
}

TEST(SymbolTest, MarkerInterningGivesEquality) {
  EXPECT_EQ(Symbol::marker("deadline"), Symbol::marker("deadline"));
  EXPECT_NE(Symbol::marker("deadline"), Symbol::marker("waiting"));
}

TEST(SymbolTest, AccessorsRoundTrip) {
  EXPECT_EQ(Symbol::chr('z').as_char(), 'z');
  EXPECT_EQ(Symbol::nat(41).as_nat(), 41u);
  EXPECT_EQ(Symbol::marker("hello").name(), "hello");
}

TEST(SymbolTest, WrongAccessorThrows) {
  EXPECT_THROW(Symbol::chr('a').as_nat(), ModelError);
  EXPECT_THROW(Symbol::nat(1).as_char(), ModelError);
  EXPECT_THROW(Symbol::chr('a').name(), ModelError);
}

TEST(SymbolTest, ToStringFormats) {
  EXPECT_EQ(Symbol::chr('q').to_string(), "q");
  EXPECT_EQ(Symbol::nat(12).to_string(), "12");
  EXPECT_EQ(Symbol::marker("f").to_string(), "<f>");
}

TEST(SymbolTest, OrderingIsTotal) {
  EXPECT_LT(Symbol::chr('a'), Symbol::chr('b'));
  // Kind-major order: all chars before all nats before all markers.
  EXPECT_LT(Symbol::chr('z'), Symbol::nat(0));
  EXPECT_LT(Symbol::nat(999), Symbol::marker("a"));
}

TEST(SymbolTest, DesignatedMarksAreStable) {
  EXPECT_EQ(marks::accept(), Symbol::marker("f"));
  EXPECT_EQ(marks::waiting(), Symbol::marker("w"));
  EXPECT_EQ(marks::deadline(), Symbol::marker("d"));
  EXPECT_EQ(marks::dollar(), Symbol::marker("$"));
}

TEST(SymbolTest, SymbolsOfRoundTrips) {
  const auto syms = symbols_of("abc");
  ASSERT_EQ(syms.size(), 3u);
  EXPECT_EQ(to_string(syms), "abc");
}

// ------------------------------------------------------------- TimedWord

TEST(TimedWordTest, EmptyWord) {
  TimedWord w;
  EXPECT_EQ(w.length(), std::uint64_t{0});
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.infinite());
  EXPECT_THROW(w.at(0), ModelError);
}

TEST(TimedWordTest, FiniteConstructionAndAccess) {
  auto w = TimedWord::finite({{Symbol::chr('a'), 1}, {Symbol::chr('b'), 3}});
  EXPECT_EQ(w.length(), std::uint64_t{2});
  EXPECT_EQ(w.at(0).sym, Symbol::chr('a'));
  EXPECT_EQ(w.at(1).time, 3u);
  EXPECT_THROW(w.at(2), ModelError);
}

TEST(TimedWordTest, NonMonotoneFiniteThrows) {
  EXPECT_THROW(
      TimedWord::finite({{Symbol::chr('a'), 5}, {Symbol::chr('b'), 3}}),
      ModelError);
}

TEST(TimedWordTest, EqualTimesAreAllowed) {
  // Definition 3.1 requires tau_i <= tau_{i+1}, not strict growth.
  auto w = TimedWord::finite({{Symbol::chr('a'), 2}, {Symbol::chr('b'), 2}});
  EXPECT_EQ(w.monotone(), Certificate::Proven);
}

TEST(TimedWordTest, ParallelVectorsConstructor) {
  auto w = TimedWord::finite(symbols_of("xy"), {0, 4});
  EXPECT_EQ(w.at(1).sym, Symbol::chr('y'));
  EXPECT_EQ(w.at(1).time, 4u);
  EXPECT_THROW(TimedWord::finite(symbols_of("xy"), {0}), ModelError);
}

TEST(TimedWordTest, FiniteWordsAreNeverWellBehaved) {
  // Section 3.2: classical words (all timestamps zero, finite) are timed
  // words but never well-behaved -- the crisp delimitation.
  auto w = classical("hello");
  EXPECT_EQ(w.monotone(), Certificate::Proven);
  EXPECT_EQ(w.well_behaved(), Certificate::Refuted);
}

TEST(TimedWordTest, LassoIndexing) {
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}},
                            {{Symbol::chr('x'), 2}, {Symbol::chr('y'), 3}}, 5);
  EXPECT_TRUE(w.infinite());
  EXPECT_EQ(w.at(0).sym, Symbol::chr('p'));
  EXPECT_EQ(w.at(1).sym, Symbol::chr('x'));
  EXPECT_EQ(w.at(1).time, 2u);
  EXPECT_EQ(w.at(2).time, 3u);
  EXPECT_EQ(w.at(3).sym, Symbol::chr('x'));
  EXPECT_EQ(w.at(3).time, 7u);  // 2 + 1*5
  EXPECT_EQ(w.at(6).time, 13u); // y + 2 laps: 3 + 2*5
}

TEST(TimedWordTest, LassoWellBehavedIffPositivePeriod) {
  auto good = TimedWord::lasso({}, {{Symbol::chr('a'), 0}}, 1);
  EXPECT_EQ(good.well_behaved(), Certificate::Proven);
  auto stalled = TimedWord::lasso({}, {{Symbol::chr('a'), 0}}, 0);
  EXPECT_EQ(stalled.well_behaved(), Certificate::Refuted);
  EXPECT_EQ(stalled.monotone(), Certificate::Proven);
}

TEST(TimedWordTest, LassoValidation) {
  EXPECT_THROW(TimedWord::lasso({}, {}, 1), ModelError);  // empty cycle
  EXPECT_THROW(TimedWord::lasso({{Symbol::chr('a'), 9}},
                                {{Symbol::chr('b'), 2}}, 5),
               ModelError);  // junction breaks monotonicity
  EXPECT_THROW(TimedWord::lasso({},
                                {{Symbol::chr('a'), 0}, {Symbol::chr('b'), 9}},
                                3),
               ModelError);  // wraparound: 0 + 3 < 9
}

TEST(TimedWordTest, GeneratorWordsMemoize) {
  int calls = 0;
  auto w = TimedWord::generator([&calls](std::uint64_t i) {
    ++calls;
    return TimedSymbol{Symbol::nat(i), i};
  });
  EXPECT_EQ(w.at(5).time, 5u);
  EXPECT_EQ(w.at(5).time, 5u);
  EXPECT_EQ(calls, 6);  // 0..5 computed once, second access cached
}

TEST(TimedWordTest, GeneratorMonotoneRefutation) {
  auto w = TimedWord::generator([](std::uint64_t i) {
    return TimedSymbol{Symbol::chr('a'), i == 3 ? 0u : i};
  });
  EXPECT_EQ(w.monotone(100), Certificate::Refuted);
  EXPECT_EQ(w.well_behaved(100), Certificate::Refuted);
}

TEST(TimedWordTest, GeneratorProofFlagsRespected) {
  GeneratorTraits traits;
  traits.monotone_proven = true;
  traits.progress_proven = true;
  auto w = TimedWord::generator(
      [](std::uint64_t i) { return TimedSymbol{Symbol::chr('a'), i}; },
      traits);
  EXPECT_EQ(w.monotone(), Certificate::Proven);
  EXPECT_EQ(w.well_behaved(), Certificate::Proven);
}

TEST(TimedWordTest, GeneratorUnprovenReportsHorizon) {
  auto w = TimedWord::generator(
      [](std::uint64_t i) { return TimedSymbol{Symbol::chr('a'), i}; });
  EXPECT_EQ(w.monotone(64), Certificate::HoldsToHorizon);
  EXPECT_EQ(w.well_behaved(64), Certificate::HoldsToHorizon);
}

TEST(TimedWordTest, FirstAfterScans) {
  auto w = TimedWord::finite(symbols_of("abc"), {1, 5, 9});
  EXPECT_EQ(w.first_after(0, 10), std::uint64_t{0});
  EXPECT_EQ(w.first_after(1, 10), std::uint64_t{1});
  EXPECT_EQ(w.first_after(5, 10), std::uint64_t{2});
  EXPECT_EQ(w.first_after(9, 10), std::nullopt);
}

TEST(TimedWordTest, FirstAfterLassoAnalytic) {
  // cycle of 2 symbols at offsets {10, 11}, period 4.
  auto w = TimedWord::lasso(
      {}, {{Symbol::chr('a'), 10}, {Symbol::chr('b'), 11}}, 4);
  // Progress: for every t there is an index beyond it.
  for (Tick t : {0u, 10u, 11u, 100u, 1000u}) {
    const auto idx = w.first_after(t, 1u << 20);
    ASSERT_TRUE(idx.has_value()) << "t=" << t;
    EXPECT_GT(w.at(*idx).time, t);
    if (*idx > 0) {
      EXPECT_LE(w.at(*idx - 1).time, t);
    }
  }
}

TEST(TimedWordTest, FirstAfterStalledLassoIsNull) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 7}}, 0);
  EXPECT_EQ(w.first_after(7, 1u << 20), std::nullopt);
  EXPECT_EQ(w.first_after(6, 1u << 20), std::uint64_t{0});
}

TEST(TimedWordTest, PrefixAndProjections) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 2);
  const auto head = w.prefix(3);
  ASSERT_EQ(head.size(), 3u);
  EXPECT_EQ(head[2].time, 5u);
  EXPECT_EQ(w.symbols(2), symbols_of("aa"));
  EXPECT_EQ(w.times(3), (std::vector<Tick>{1, 3, 5}));
}

TEST(TimedWordTest, TextAtPlacesAllSymbolsAtOneTick) {
  auto w = TimedWord::text_at("hi", 42);
  EXPECT_EQ(w.times(2), (std::vector<Tick>{42, 42}));
}

TEST(TimedWordTest, LassoAccessorsContract) {
  auto fin = TimedWord::text_at("a", 0);
  EXPECT_FALSE(fin.is_lasso_rep());
  EXPECT_TRUE(fin.is_finite_rep());
  EXPECT_THROW(fin.lasso_cycle(), ModelError);
  auto las = TimedWord::lasso({}, {{Symbol::chr('a'), 0}}, 1);
  EXPECT_TRUE(las.is_lasso_rep());
  EXPECT_EQ(las.lasso_period(), 1u);
  EXPECT_EQ(las.lasso_cycle().size(), 1u);
}

TEST(TimedWordTest, ToStringTruncates) {
  auto w = TimedWord::lasso({}, {{Symbol::chr('a'), 1}}, 1);
  const auto text = w.to_string(2);
  EXPECT_NE(text.find("..."), std::string::npos);
}

TEST(SubsequenceTest, MatchesDefinition) {
  // sigma' is a subsequence of sigma: order-preserving embedding.
  auto w = TimedWord::finite(symbols_of("abcd"), {0, 1, 2, 3});
  EXPECT_TRUE(is_subsequence({{Symbol::chr('a'), 0}, {Symbol::chr('c'), 2}},
                             w, 10));
  EXPECT_FALSE(is_subsequence({{Symbol::chr('c'), 2}, {Symbol::chr('a'), 0}},
                              w, 10));
  EXPECT_TRUE(is_subsequence({}, w, 10));
  EXPECT_FALSE(is_subsequence({{Symbol::chr('a'), 9}}, w, 10));
}

// Property sweep: lasso words satisfy monotonicity for many shapes.
class LassoPeriodProperty : public ::testing::TestWithParam<Tick> {};

TEST_P(LassoPeriodProperty, MonotoneAcrossManyIndices) {
  const Tick period = GetParam();
  auto w = TimedWord::lasso({{Symbol::chr('p'), 0}, {Symbol::chr('q'), 1}},
                            {{Symbol::chr('x'), 1},
                             {Symbol::chr('y'), 1 + period / 2},
                             {Symbol::chr('z'), 1 + period}},
                            period);
  Tick prev = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto ts = w.at(i);
    EXPECT_GE(ts.time, prev) << "index " << i;
    prev = ts.time;
  }
  EXPECT_EQ(w.well_behaved(), period > 0 ? Certificate::Proven
                                         : Certificate::Refuted);
}

INSTANTIATE_TEST_SUITE_P(Periods, LassoPeriodProperty,
                         ::testing::Values<Tick>(0, 1, 2, 3, 5, 8, 13, 21, 64,
                                                 1000));

}  // namespace
