// Tests for the section 6 explicit parallel model: the process runtime and
// its (c_k, l_k, r_k) behavior words, the PRAM degenerate case, the
// rt-PROC(p) hierarchy experiment, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "rtw/core/error.hpp"
#include "rtw/par/pram.hpp"
#include "rtw/par/process.hpp"
#include "rtw/par/rtproc.hpp"
#include "rtw/par/rtproc_word.hpp"
#include "rtw/engine/engine.hpp"
#include "rtw/sim/thread_pool.hpp"

namespace {

using namespace rtw::par;
using rtw::core::Symbol;
using rtw::sim::ThreadPool;

// --------------------------------------------------------- ProcessSystem

/// Sends its tick count to the next process (ring) and emits a symbol.
class RingProcess final : public Process {
public:
  RingProcess(ProcId self, ProcId total) : self_(self), total_(total) {}
  std::string name() const override { return "ring"; }
  void on_tick(ProcContext& ctx) override {
    for (const auto& m : ctx.inbox()) received_total_ += m.payload.as_nat();
    ctx.emit(Symbol::nat(ctx.now()));
    ctx.send((self_ + 1) % total_, Symbol::nat(ctx.now()));
  }
  std::uint64_t received_total() const noexcept { return received_total_; }

private:
  ProcId self_;
  ProcId total_;
  std::uint64_t received_total_ = 0;
};

TEST(ProcessSystemTest, MessagesHaveUnitLatency) {
  ProcessSystem system(2, [](ProcId id) {
    return std::make_unique<RingProcess>(id, 2);
  });
  const auto trace = system.run(5);
  // Process 0 sent at ticks 0..4; process 1 received copies at 1..4.
  ASSERT_EQ(trace.processes[0].sent.size(), 5u);
  ASSERT_EQ(trace.processes[1].received.size(), 4u);
  for (const auto& m : trace.processes[1].received)
    EXPECT_EQ(m.received_at, m.sent_at + 1);
}

TEST(ProcessSystemTest, BehaviorWordsCarryAllThreeComponents) {
  ProcessSystem system(3, [](ProcId id) {
    return std::make_unique<RingProcess>(id, 3);
  });
  const auto trace = system.run(4);
  for (ProcId k = 0; k < 3; ++k) {
    const auto c = trace.computation_word(k);
    const auto l = trace.send_word(k);
    const auto r = trace.receive_word(k);
    EXPECT_EQ(c.length(), std::uint64_t{4});       // one emit per tick
    EXPECT_EQ(*l.length(), 5u * 4);                // 4 messages encoded
    EXPECT_EQ(*r.length(), 5u * 3);                // 3 deliveries encoded
    const auto behavior = trace.behavior_word(k);
    EXPECT_EQ(*behavior.length(), 4 + 20 + 15u);
    EXPECT_EQ(behavior.monotone(), rtw::core::Certificate::Proven);
  }
}

TEST(ProcessSystemTest, EmitDisciplineEnforced) {
  class DoubleEmit final : public Process {
  public:
    void on_tick(ProcContext& ctx) override {
      ctx.emit(Symbol::nat(0));
      ctx.emit(Symbol::nat(1));  // violates one-symbol-per-tick
    }
  };
  ProcessSystem system(1,
                       [](ProcId) { return std::make_unique<DoubleEmit>(); });
  EXPECT_THROW(system.run(1), rtw::core::ModelError);
}

TEST(ProcessSystemTest, Validation) {
  EXPECT_THROW(ProcessSystem(0, [](ProcId) {
                 return std::make_unique<RingProcess>(0, 1);
               }),
               rtw::core::ModelError);
  EXPECT_THROW(ProcessSystem(1, nullptr), rtw::core::ModelError);
  class BadSend final : public Process {
  public:
    void on_tick(ProcContext& ctx) override {
      ctx.send(9, Symbol::nat(0));  // unknown addressee
    }
  };
  ProcessSystem system(1, [](ProcId) { return std::make_unique<BadSend>(); });
  EXPECT_THROW(system.run(1), rtw::core::ModelError);
}

TEST(ProcessSystemTest, RunIsDeterministic) {
  auto run_once = [] {
    ProcessSystem system(4, [](ProcId id) {
      return std::make_unique<RingProcess>(id, 4);
    });
    const auto trace = system.run(16);
    std::uint64_t signature = 0;
    for (const auto& proc : trace.processes)
      for (const auto& m : proc.received)
        signature = signature * 31 + m.payload.as_nat() + m.received_at;
    return signature;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------------------------ PRAM

TEST(PramTest, PrefixSumsDoubling) {
  Pram pram(8, 8, PramVariant::Crew);
  std::iota(pram.memory().begin(), pram.memory().end(), 1);  // 1..8
  const auto steps = pram_prefix_sums(pram, 8);
  EXPECT_EQ(steps, 3u);  // log2(8)
  const std::vector<Word> expected{1, 3, 6, 10, 15, 21, 28, 36};
  EXPECT_EQ(pram.memory(), expected);
}

TEST(PramTest, ErewRejectsConcurrentReads) {
  Pram pram(2, 4, PramVariant::Erew);
  const PramProgram program = [](std::uint32_t,
                                 Tick step) -> std::optional<PramStep> {
    if (step > 0) return std::nullopt;
    PramStep s;
    s.reads = {0};  // both processors read cell 0
    s.compute = [](std::span<const Word>) {
      return std::vector<std::pair<std::size_t, Word>>{};
    };
    return s;
  };
  EXPECT_THROW(pram.run(program, 4), rtw::core::ModelError);
  // The same program is legal under CREW.
  Pram crew(2, 4, PramVariant::Crew);
  EXPECT_EQ(crew.run(program, 4), 1u);
}

TEST(PramTest, WriteConflictsAlwaysIllegal) {
  Pram pram(2, 4, PramVariant::Crew);
  const PramProgram program = [](std::uint32_t,
                                 Tick step) -> std::optional<PramStep> {
    if (step > 0) return std::nullopt;
    PramStep s;
    s.compute = [](std::span<const Word>) {
      return std::vector<std::pair<std::size_t, Word>>{{0, 7}};
    };
    return s;
  };
  EXPECT_THROW(pram.run(program, 4), rtw::core::ModelError);
}

TEST(PramTest, BoundsChecked) {
  Pram pram(1, 2, PramVariant::Crew);
  const PramProgram bad_read = [](std::uint32_t,
                                  Tick) -> std::optional<PramStep> {
    PramStep s;
    s.reads = {9};
    s.compute = [](std::span<const Word>) {
      return std::vector<std::pair<std::size_t, Word>>{};
    };
    return s;
  };
  EXPECT_THROW(pram.run(bad_read, 1), rtw::core::ModelError);
  EXPECT_THROW(Pram(0, 1, PramVariant::Crew), rtw::core::ModelError);
  EXPECT_THROW(Pram(1, 0, PramVariant::Crew), rtw::core::ModelError);
}

// --------------------------------------------------------------- rt-PROC

TEST(RtProcTest, SingleProcessorHandlesUnitLoad) {
  const auto outcome = run_rtproc_trial({1, 1, 8, 256});
  EXPECT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.late, 0u);
  EXPECT_GT(outcome.retired, 200u);
}

TEST(RtProcTest, SingleProcessorFailsDoubleLoad) {
  const auto outcome = run_rtproc_trial({1, 2, 8, 256});
  EXPECT_FALSE(outcome.accepted);
  EXPECT_GT(outcome.late, 0u);
  EXPECT_GT(outcome.peak_backlog, 8u);  // backlog grows without bound
}

TEST(RtProcTest, MatchingParallelismAccepts) {
  for (ProcId p : {2u, 3u, 4u}) {
    const auto outcome = run_rtproc_trial({p, p, 8, 256});
    EXPECT_TRUE(outcome.accepted) << "p=" << p;
  }
}

TEST(RtProcTest, MatrixShowsStrictHierarchy) {
  // The rt-PROC hierarchy question, answered positively on this family:
  // row p accepts exactly the columns m <= p.
  const auto matrix = rtproc_matrix(4, 4, 8, 256);
  for (std::size_t p = 0; p < 4; ++p)
    for (std::size_t m = 0; m < 4; ++m)
      EXPECT_EQ(matrix[p][m], m <= p) << "p=" << p + 1 << " m=" << m + 1;
}

TEST(RtProcTest, Validation) {
  EXPECT_THROW(run_rtproc_trial({0, 1, 1, 1}), rtw::core::ModelError);
  EXPECT_THROW(run_rtproc_trial({1, 0, 1, 1}), rtw::core::ModelError);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 6 * 7; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace

// ----------------------------------------- L_m as words (rtproc_word.hpp)

namespace token_words {

using namespace rtw::par;
using rtw::core::Symbol;

TEST(TokenWordTest, DeliversRatePerTick) {
  const auto w = build_token_word(3);
  EXPECT_EQ(w.well_behaved(), rtw::core::Certificate::Proven);
  // Ticks carry exactly 3 tokens each.
  for (std::uint64_t i = 0; i < 12; ++i)
    EXPECT_EQ(w.at(i).time, 1 + i / 3) << "i=" << i;
  EXPECT_THROW(build_token_word(0), rtw::core::ModelError);
}

TEST(TokenStreamTest, MatchingWorkersAccept) {
  for (std::uint32_t m : {1u, 2u, 4u}) {
    TokenStreamAcceptor acceptor(m, 4);
    rtw::core::RunOptions options;
    options.horizon = 300;
    const auto r =
        rtw::engine::run(acceptor, build_token_word(m), options).result;
    EXPECT_TRUE(r.accepted) << "m=" << m;
    EXPECT_FALSE(r.exact);  // the obligation never ends
    EXPECT_EQ(acceptor.peak_backlog(), m);  // one tick's worth in flight
  }
}

TEST(TokenStreamTest, UnderProvisionedRejectsExactly) {
  TokenStreamAcceptor acceptor(2, 4);
  rtw::core::RunOptions options;
  options.horizon = 300;
  const auto r =
      rtw::engine::run(acceptor, build_token_word(3), options).result;
  EXPECT_FALSE(r.accepted);
  EXPECT_TRUE(r.exact);  // the first late token locks s_r
}

TEST(TokenStreamTest, LanguageStaircaseMatchesProcessRuntime) {
  // The word-level staircase agrees with the process-runtime matrix: a
  // p-worker acceptor's language contains exactly the rates m <= p.
  for (std::uint32_t p = 1; p <= 4; ++p) {
    const auto lang = rtproc_language(p, 4, 300);
    for (std::uint32_t m = 1; m <= 4; ++m)
      EXPECT_EQ(lang.contains(build_token_word(m)), m <= p)
          << "p=" << p << " m=" << m;
  }
}

TEST(TokenStreamTest, SamplesAreMembers) {
  const auto lang = rtproc_language(3, 4, 300);
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_TRUE(lang.contains(lang.sample(i))) << "sample " << i;
}

}  // namespace token_words
